"""Seeded synthetic point-set generators.

The paper's theory is parameterized by ``n``, ``eps``, the aspect ratio
``Delta``, and the doubling dimension ``lambda``; each generator here
lets a bench sweep one of those knobs while pinning the others:

* :func:`uniform_cube` — ``Delta ~ n^(1/d)``, ``lambda ~ d``: the
  baseline workload;
* :func:`gaussian_clusters` — the clustered data that motivates ANN
  systems (recommendation/embedding workloads);
* :func:`geometric_clusters` — a fractal family whose aspect ratio grows
  geometrically with its ``levels`` parameter at fixed ``n`` — the knob
  for every ``log Delta`` sweep;
* :func:`exponential_line` — exponentially stretched collinear points:
  tiny ``n`` but huge ``Delta``, the stress case for net hierarchies;
* :func:`low_doubling_curve` — a smooth 1-D curve embedded in ``R^d``:
  ambient dimension high, doubling dimension ~1, separating the two in
  benches.

All generators take an explicit ``numpy.random.Generator`` and return
``(n, d)`` float64 arrays; use :func:`repro.metrics.scaling.normalize_min_distance`
(or :func:`make_dataset`) before graph construction.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import Dataset, MetricSpace
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.scaling import normalize_min_distance

__all__ = [
    "uniform_cube",
    "gaussian_clusters",
    "geometric_clusters",
    "exponential_line",
    "low_doubling_curve",
    "grid_points",
    "make_dataset",
]


def uniform_cube(
    n: int, dim: int, rng: np.random.Generator, side: float = 1.0
) -> np.ndarray:
    """``n`` i.i.d. uniform points in ``[0, side]^dim``."""
    return rng.uniform(0.0, side, size=(n, dim))


def gaussian_clusters(
    n: int,
    dim: int,
    rng: np.random.Generator,
    clusters: int = 8,
    spread: float = 0.05,
    side: float = 1.0,
) -> np.ndarray:
    """Points drawn around ``clusters`` uniform centers with isotropic
    Gaussian noise of scale ``spread * side``."""
    centers = rng.uniform(0.0, side, size=(clusters, dim))
    assignment = rng.integers(clusters, size=n)
    return centers[assignment] + rng.normal(0.0, spread * side, size=(n, dim))


def geometric_clusters(
    n: int,
    dim: int,
    rng: np.random.Generator,
    levels: int = 4,
    branching: int = 2,
    ratio: float = 8.0,
    jitter: float = 0.25,
) -> np.ndarray:
    """Fractal cluster hierarchy with aspect ratio ``~ ratio^levels``.

    Each point picks a branch at every level; the level-``k`` offset has
    magnitude ``ratio^k``, so inter-point distances span ``levels``
    geometric scales while ``n`` stays fixed — the ``log Delta`` sweep
    workload (larger ``levels`` -> larger ``log Delta``).
    """
    if levels < 1:
        raise ValueError("levels must be at least 1")
    offsets = []
    for _ in range(levels):
        raw = rng.normal(size=(branching, dim))
        offsets.append(raw / np.linalg.norm(raw, axis=1, keepdims=True))
    points = rng.normal(0.0, jitter, size=(n, dim))
    for k in range(levels):
        choice = rng.integers(branching, size=n)
        points += offsets[k][choice] * (ratio ** (k + 1))
    return points


def exponential_line(
    n: int,
    rng: np.random.Generator,
    dim: int = 2,
    base: float = 2.0,
    jitter: float = 0.01,
) -> np.ndarray:
    """Points near a line with exponentially growing gaps: ``x_k ~ base^k``.

    Aspect ratio is ``~ base^n`` — maximal ``log Delta`` per point, the
    worst case for ``O(n log Delta)``-edge constructions.
    """
    points = np.zeros((n, dim))
    points[:, 0] = base ** np.arange(n)
    points += rng.normal(0.0, jitter, size=(n, dim))
    return points


def low_doubling_curve(
    n: int,
    ambient_dim: int,
    rng: np.random.Generator,
    frequencies: int = 3,
) -> np.ndarray:
    """Points on a smooth closed curve in ``R^ambient_dim`` (random
    trigonometric coefficients): doubling dimension ~1 regardless of the
    ambient dimension."""
    t = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=n))
    coeffs_sin = rng.normal(size=(frequencies, ambient_dim))
    coeffs_cos = rng.normal(size=(frequencies, ambient_dim))
    points = np.zeros((n, ambient_dim))
    for f in range(1, frequencies + 1):
        points += np.outer(np.sin(f * t), coeffs_sin[f - 1])
        points += np.outer(np.cos(f * t), coeffs_cos[f - 1])
    return points


def grid_points(side: int, dim: int, spacing: float = 1.0) -> np.ndarray:
    """The full ``side^dim`` lattice with the given spacing."""
    axes = [np.arange(side, dtype=np.float64) * spacing] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack(mesh, axis=-1).reshape(-1, dim)


def jittered_grid(
    side: int, dim: int, rng: np.random.Generator, jitter: float = 0.2
) -> np.ndarray:
    """A lattice with per-point uniform jitter: *constant density* data.

    Unlike i.i.d. uniform points (whose closest pair shrinks like
    ``n^(-2/d)``), the jittered grid keeps the minimum inter-point
    distance proportional to the spacing, so after normalization the
    aspect ratio is ``Theta(side)`` = ``Theta(n^(1/d))`` exactly — the
    cleanest family for "edges vs n log Delta" scaling benches.
    """
    if not 0 <= jitter < 0.5:
        raise ValueError("jitter must be in [0, 0.5) to keep points separated")
    pts = grid_points(side, dim)
    return pts + rng.uniform(-jitter, jitter, size=pts.shape)


def exponential_cluster_chain(
    clusters: int,
    cluster_size: int,
    rng: np.random.Generator,
    dim: int = 2,
    base: float = 4.0,
    cluster_radius: float = 1.0,
) -> np.ndarray:
    """``clusters`` identical blobs at exponentially growing offsets
    ``base^c`` along the first axis — the log-Delta knob.

    Local geometry (cluster size, radius, density) is *fixed*, so
    sweeping ``clusters`` changes only the number of distance scales:
    ``log Delta ~ clusters * log2(base)``.  Each point sees every farther
    cluster at its own distinct scale, so Theorem 1.1's ``n log Delta``
    edge bound is tight on this family, while the Theorem 1.3 merged
    graph stays at ``O(n)`` — the paper's Euclidean separation made
    visible (benches E1b and E6).
    """
    if clusters < 1 or cluster_size < 1:
        raise ValueError("need at least one cluster with at least one point")
    blobs = []
    for c in range(clusters):
        blob = rng.uniform(-cluster_radius, cluster_radius, size=(cluster_size, dim))
        blob[:, 0] += base ** (c + 1)
        blobs.append(blob)
    return np.concatenate(blobs, axis=0)


def make_dataset(
    points: np.ndarray,
    metric: MetricSpace | None = None,
    normalize: bool = True,
) -> Dataset:
    """Wrap raw coordinates as a (normalized) Euclidean dataset."""
    dataset = Dataset(metric or EuclideanMetric(), np.asarray(points, dtype=np.float64))
    if normalize:
        dataset, _factor = normalize_min_distance(dataset)
    return dataset
