"""Shared fixtures: deterministic workloads sized for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import Dataset, EuclideanMetric
from repro.metrics.scaling import normalize_min_distance
from repro.workloads import gaussian_clusters, uniform_cube


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def uniform2d(rng) -> Dataset:
    """120 uniform points in the plane, normalized to min distance 2."""
    points = uniform_cube(120, 2, rng)
    dataset = Dataset(EuclideanMetric(), points)
    dataset, _ = normalize_min_distance(dataset)
    return dataset


@pytest.fixture
def clustered2d(rng) -> Dataset:
    """100 clustered points in the plane (4 clusters), normalized."""
    points = gaussian_clusters(100, 2, rng, clusters=4, spread=0.02)
    dataset = Dataset(EuclideanMetric(), points)
    dataset, _ = normalize_min_distance(dataset)
    return dataset


@pytest.fixture
def uniform3d(rng) -> Dataset:
    """80 uniform points in R^3, normalized."""
    points = uniform_cube(80, 3, rng)
    dataset = Dataset(EuclideanMetric(), points)
    dataset, _ = normalize_min_distance(dataset)
    return dataset


def mixed_queries(dataset: Dataset, rng: np.random.Generator, m: int = 30):
    """Queries from all regimes: near data, uniform, far, and exact data
    points — what a (1+eps)-PG must serve."""
    from repro.workloads import (
        data_queries,
        far_queries,
        near_data_queries,
        uniform_queries,
    )

    points = np.asarray(dataset.points)
    per = max(m // 4, 2)
    return list(
        np.concatenate(
            [
                near_data_queries(per, points, rng),
                uniform_queries(per, points, rng),
                far_queries(per, points, rng),
                data_queries(per, points, rng),
            ]
        )
    )
