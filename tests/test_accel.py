"""Compiled traversal kernels (ISSUE 6).

Contract under test:

* every available accel backend (numba when installed, the cffi C
  backend when a compiler is present, the interpreted ``python``
  reference otherwise) returns **bit-identical** results to the pinned
  numpy engines — ids, distances, eval counts, hop counts — across
  3 seeds, both engine modes, and all three storages (flat/SQ8/PQ);
* edge semantics survive compilation exactly: ``k > beam_width``,
  allowed masks (subset, empty, fully-masked), and budget truncation;
* an explicitly requested backend that cannot run here raises
  :class:`AccelUnavailableError` with an actionable message, while
  ``backend="auto"`` silently serves numpy (one
  :class:`AccelFallbackWarning` per process from ``warm()``, none from
  searches);
* backends are inert until warmed: ``get_backend()`` is ``"numpy"`` in
  a fresh process, flips after :func:`repro.accel.warm`, and
  ``index.stats()["accel"]`` reports the live status;
* the kernels' ``pairwise_sum`` replicates numpy's pairwise summation
  bit-exactly (the property PQ-ADC bit-identity rests on);
* the sharded fan-out resolves ``backend="auto"`` in the parent and
  ships a concrete backend name to its workers.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import ProximityGraphIndex, SearchParams, accel
from repro.accel import dispatch, kernels
from repro.core.sharded import ShardedIndex
from repro.graphs.engine import beam_search_batch, greedy_batch
from repro.workloads import uniform_cube

#: Backends this environment can actually run (numba and/or cffi and/or
#: the interpreted reference).  Always non-empty: "python" is available
#: whenever numba is absent.
BACKENDS = [b for b in ("numba", "cffi", "python")
            if b in accel.available_backends()]
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def points():
    return uniform_cube(300, 4, np.random.default_rng(11))


@pytest.fixture(scope="module", params=["flat", "sq8", "pq"])
def storage_index(request, points):
    index = ProximityGraphIndex.build(
        points, epsilon=1.0, method="vamana", seed=4
    )
    if request.param != "flat":
        index.set_storage(request.param)
    return index


@pytest.fixture(scope="module")
def index(points):
    return ProximityGraphIndex.build(
        points, epsilon=1.0, method="vamana", seed=4
    )


@pytest.fixture(scope="module")
def queries():
    return np.random.default_rng(23).uniform(size=(25, 4))


def _assert_equal(got, ref, ctx):
    __tracebackhide__ = True
    assert np.array_equal(got.ids, ref.ids), ctx
    assert np.array_equal(got.distances, ref.distances), ctx
    assert np.array_equal(got.evals, ref.evals), ctx
    if ref.hops is None:
        assert got.hops is None, ctx
    else:
        assert np.array_equal(got.hops, ref.hops), ctx


class TestBitIdentity:
    """Backends vs numpy through the ``search()`` front door."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode,k", [("beam", 10), ("greedy", 1)])
    def test_three_seed_equivalence(self, storage_index, queries, backend, mode, k):
        for seed in SEEDS:
            ref = storage_index.search(
                queries, k=k,
                params=SearchParams(mode=mode, seed=seed, backend="numpy"),
            )
            got = storage_index.search(
                queries, k=k,
                params=SearchParams(mode=mode, seed=seed, backend=backend),
            )
            _assert_equal(got, ref, (backend, mode, seed, storage_index.store.kind))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_k_larger_than_beam_width(self, index, queries, backend):
        for params in (
            SearchParams(mode="beam", beam_width=4, seed=0),
            SearchParams(mode="beam", beam_width=1, seed=1),
        ):
            ref = index.search(queries, k=16, params=params)
            got = index.search(
                queries, k=16,
                params=SearchParams(**{**params.__dict__, "backend": backend}),
            )
            _assert_equal(got, ref, (backend, params.beam_width))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_allowed_subset_mask(self, index, queries, backend):
        allowed = list(range(0, 300, 7))
        for seed in SEEDS:
            ref = index.search(
                queries, k=8,
                params=SearchParams(seed=seed, allowed_ids=allowed,
                                    backend="numpy"),
            )
            got = index.search(
                queries, k=8,
                params=SearchParams(seed=seed, allowed_ids=allowed,
                                    backend=backend),
            )
            _assert_equal(got, ref, (backend, seed))
            assert set(ref.ids[ref.ids >= 0].tolist()) <= set(allowed)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_member_mask(self, index, queries, backend):
        """A one-id filter: every query must return exactly that id."""
        ref = index.search(
            queries, k=3,
            params=SearchParams(seed=0, allowed_ids=[17], backend="numpy"),
        )
        got = index.search(
            queries, k=3,
            params=SearchParams(seed=0, allowed_ids=[17], backend=backend),
        )
        _assert_equal(got, ref, backend)
        assert (got.ids[:, 0] == 17).all()
        assert (got.ids[:, 1:] == -1).all()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_and_fully_masked_engine_level(self, index, queries, backend):
        """All-False masks reach the engines when called directly; the
        compiled path must agree (all padding, same eval counts)."""
        graph, dataset = index.graph, index.dataset
        starts = np.zeros(len(queries), dtype=np.int64)
        mask = np.zeros(graph.n, dtype=bool)
        ref = beam_search_batch(
            graph, dataset, starts, queries, beam_width=8, k=4,
            allowed=mask, backend=None,
        )
        got = beam_search_batch(
            graph, dataset, starts, queries, beam_width=8, k=4,
            allowed=mask, backend=backend,
        )
        assert got == ref
        assert all(pairs == [] for pairs, _evals in got)
        gref = greedy_batch(graph, dataset, starts, queries, allowed=mask)
        ggot = greedy_batch(
            graph, dataset, starts, queries, allowed=mask, backend=backend
        )
        assert ggot == gref
        assert all(r.point == -1 and r.distance == np.inf for r in ggot)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_budget_truncation(self, index, queries, backend):
        for budget in (1, 5, 37):
            for mode, k in (("beam", 4), ("greedy", 1)):
                params = dict(mode=mode, budget=budget, seed=0)
                ref = index.search(
                    queries, k=k, params=SearchParams(**params, backend="numpy")
                )
                got = index.search(
                    queries, k=k, params=SearchParams(**params, backend=backend)
                )
                _assert_equal(got, ref, (backend, mode, budget))
                assert (got.evals <= budget).all()


class TestBackendSelection:
    def test_unavailable_backend_raises_clear_error(self, index, queries):
        missing = "numba" if "numba" not in BACKENDS else "python"
        with pytest.raises(accel.AccelUnavailableError, match=missing):
            index.search(
                queries, k=4, params=SearchParams(seed=0, backend=missing)
            )

    def test_unknown_backend_name_rejected_early(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SearchParams(backend="cuda")

    def test_auto_is_inert_until_warmed(self, index, queries):
        accel.reset()
        try:
            assert accel.get_backend() == "numpy"
            ref = index.search(
                queries, k=4, params=SearchParams(seed=0, backend="numpy")
            )
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # auto must never warn
                got = index.search(
                    queries, k=4, params=SearchParams(seed=0, backend="auto")
                )
            _assert_equal(got, ref, "auto-unwarmed")
        finally:
            accel.reset()

    def test_auto_serves_warmed_backend(self, index, queries):
        accel.reset()
        try:
            rec = accel.warm(BACKENDS[0])
            assert rec["backend"] == BACKENDS[0]
            assert rec["compile_seconds"] >= 0.0
            assert accel.get_backend() == (
                BACKENDS[0] if BACKENDS[0] != "python" else "python"
            )
            ref = index.search(
                queries, k=4, params=SearchParams(seed=0, backend="numpy")
            )
            got = index.search(
                queries, k=4, params=SearchParams(seed=0, backend="auto")
            )
            _assert_equal(got, ref, "auto-warmed")
        finally:
            accel.reset()

    def test_warm_is_idempotent(self):
        accel.reset()
        try:
            first = accel.warm(BACKENDS[0])
            again = accel.warm(BACKENDS[0])
            assert again["backend"] == BACKENDS[0]
            assert again["compile_seconds"] == first["compile_seconds"]
        finally:
            accel.reset()

    def test_warm_auto_without_compiled_warns_once(self, monkeypatch):
        """No compiled backend anywhere: ``warm()`` falls back to numpy
        with exactly one AccelFallbackWarning per process."""
        accel.reset()
        monkeypatch.setattr(dispatch, "available_backends", lambda: [])
        try:
            with pytest.warns(accel.AccelFallbackWarning):
                rec = accel.warm()
            assert rec == {"backend": "numpy", "compile_seconds": 0.0}
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second call: silent
                rec = accel.warm("auto")
            assert rec["backend"] == "numpy"
        finally:
            accel.reset()

    def test_python_backend_never_auto_selected(self, monkeypatch):
        """The interpreted reference is opt-in only: with numba absent
        and no C compiler, ``warm(auto)`` prefers numpy over it."""
        accel.reset()
        monkeypatch.setattr(dispatch, "available_backends", lambda: ["python"])
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", accel.AccelFallbackWarning)
                assert accel.warm()["backend"] == "numpy"
        finally:
            accel.reset()


class TestStatusReporting:
    def test_stats_reports_backend_status(self, index):
        accel.reset()
        try:
            status = index.stats()["accel"]
            assert status["active"] == "numpy"
            assert status["backends"]["numpy"]["warm"] is True
            for name in BACKENDS:
                assert status["backends"][name]["available"] is True
                assert status["backends"][name]["warm"] is False
            accel.warm(BACKENDS[0])
            status = index.stats()["accel"]
            if BACKENDS[0] in dispatch.COMPILED_PRIORITY:
                assert status["active"] == BACKENDS[0]
            assert status["backends"][BACKENDS[0]]["warm"] is True
            assert status["backends"][BACKENDS[0]]["compile_seconds"] >= 0.0
        finally:
            accel.reset()

    def test_status_is_json_safe(self, index):
        import json

        json.dumps(accel.backend_status())


class TestPairwiseSum:
    def test_matches_numpy_bit_exactly(self):
        rng = np.random.default_rng(99)
        for m in list(range(1, 33)) + [48, 63, 64, 65, 100, 127, 128]:
            a = rng.standard_normal(m) * rng.uniform(0.1, 1e6)
            got = kernels.pairwise_sum(a, 0, m)
            assert got == np.sum(a), m

    def test_respects_offset(self):
        a = np.arange(20, dtype=np.float64) * np.pi
        assert kernels.pairwise_sum(a, 5, 10) == np.sum(a[5:15])


class TestSharded:
    @pytest.fixture(scope="class")
    def sharded(self, points):
        return ShardedIndex.build(
            points, epsilon=1.0, method="vamana", shards=2, seed=4
        )

    @pytest.mark.parametrize("backend", BACKENDS[:1])
    def test_fanout_bit_identity(self, sharded, queries, backend):
        ref = sharded.search(
            queries, k=8, params=SearchParams(seed=0, backend="numpy")
        )
        got = sharded.search(
            queries, k=8, params=SearchParams(seed=0, backend=backend)
        )
        _assert_equal(got, ref, backend)

    def test_auto_resolved_before_fanout(self, sharded, queries):
        """The parent pins ``"auto"`` to a concrete backend name so
        workers never re-resolve against their own (cold) warm state."""
        accel.reset()
        try:
            accel.warm(BACKENDS[0])
            ref = sharded.search(
                queries, k=8, params=SearchParams(seed=0, backend="numpy")
            )
            got = sharded.search(
                queries, k=8, params=SearchParams(seed=0, backend="auto")
            )
            _assert_equal(got, ref, "sharded-auto")
        finally:
            accel.reset()

    def test_sharded_stats_report_accel(self, sharded):
        assert sharded.stats()["accel"]["backends"]["numpy"]["warm"] is True
