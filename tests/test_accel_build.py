"""Compiled construction vs the numpy wave engine.

The accel build path (``repro.accel.run_construction`` /
``run_robust_prune`` / ``run_commit_wave`` behind the ``backend=`` seam
of the insertion builders) must produce graphs *bit-identical* to the
numpy wave engine — same adjacency, same order — on every workload it
accepts, and must follow the same selection semantics as search: an
explicitly requested backend that cannot run raises, ``"auto"`` falls
back silently.

Coverage:

* 3-seed bit-identity of every available compiled backend vs numpy
  across the four insertion builders (hnsw / nsw / vamana / diskann)
  and across the three storage kinds (construction always runs over the
  raw float64 points, so storage must not perturb the graph);
* ``batch_size=1`` equivalence: the compiled singleton-wave schedule
  replays the sequential reference insertions exactly;
* unavailable-backend error vs silent ``"auto"`` fallback (unwarmed
  auto builds run numpy and never warn), and the explicit-backend
  ``UnsupportedWorkloadError`` on a metric without a kernel route;
* sharded pooled-build identity: worker processes (spawn) build each
  shard with the shipped concrete backend, bit-identical to the
  in-process numpy build.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import accel
from repro.core.index import ProximityGraphIndex
from repro.core.sharded import ShardedIndex
from repro.metrics.euclidean import MinkowskiMetric

BACKENDS = [
    b for b in ("numba", "cffi", "python") if b in accel.available_backends()
]
SEEDS = (0, 1, 2)
BUILDERS = {
    "hnsw": {"m": 6, "ef_construction": 32},
    "nsw": {"m": 6},
    "vamana": {"max_degree": 12, "beam_width": 24},
    "diskann": {},
}
N, DIM, BATCH = 220, 4, 48


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return np.random.default_rng(42).standard_normal((N, DIM))


@pytest.fixture(autouse=True)
def _reset_accel():
    yield
    accel.reset()


def _csr(index: ProximityGraphIndex):
    offsets, targets = index.graph.csr()
    return np.asarray(offsets), np.asarray(targets)


_REF_CACHE: dict[tuple, tuple] = {}


def _reference(points, method, seed, **kw):
    """The numpy wave build, cached per (method, seed, options)."""
    key = (method, seed, tuple(sorted(kw.items())))
    if key not in _REF_CACHE:
        idx = ProximityGraphIndex.build(
            points, method=method, seed=seed, batch_size=BATCH,
            **BUILDERS[method], **kw,
        )
        _REF_CACHE[key] = (_csr(idx), idx)
    return _REF_CACHE[key]


def _assert_same_graph(got: ProximityGraphIndex, want_csr, label) -> None:
    go, gt_ = _csr(got)
    wo, wt = want_csr
    assert np.array_equal(go, wo) and np.array_equal(gt_, wt), (
        f"compiled build diverged from the numpy wave build: {label}"
    )


class TestBuilderBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method", sorted(BUILDERS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_three_seed_equivalence(self, points, backend, method, seed):
        want_csr, _ = _reference(points, method, seed)
        got = ProximityGraphIndex.build(
            points, method=method, seed=seed, batch_size=BATCH,
            backend=backend, **BUILDERS[method],
        )
        _assert_same_graph(got, want_csr, (backend, method, seed))

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("storage", ["flat", "sq8", "pq"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_storage_kinds_do_not_perturb_construction(
        self, points, backend, storage, seed
    ):
        """Construction always measures the raw float64 points — the
        traversal storage of the finished index must not change the
        graph the compiled path builds."""
        want_csr, _ = _reference(points, "vamana", seed)
        got = ProximityGraphIndex.build(
            points, method="vamana", seed=seed, batch_size=BATCH,
            backend=backend, storage=storage, **BUILDERS["vamana"],
        )
        _assert_same_graph(got, want_csr, (backend, storage, seed))
        assert got.store.kind == storage

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_size_one_replays_sequential(self, points, backend):
        """Singleton waves route through the sequential insertion path;
        a compiled ``batch_size=1`` build must equal the numpy
        sequential (``batch_size=None``) reference exactly."""
        seq = ProximityGraphIndex.build(
            points, method="vamana", seed=3, **BUILDERS["vamana"],
        )
        got = ProximityGraphIndex.build(
            points, method="vamana", seed=3, batch_size=1,
            backend=backend, **BUILDERS["vamana"],
        )
        _assert_same_graph(got, _csr(seq), (backend, "batch_size=1"))


class TestBackendSelection:
    def test_unavailable_backend_raises_clear_error(self, points):
        missing = [
            b for b in ("numba", "cffi") if b not in accel.available_backends()
        ]
        if not missing:
            pytest.skip("every compiled backend is available here")
        with pytest.raises(accel.AccelUnavailableError):
            ProximityGraphIndex.build(
                points, method="vamana", seed=0, batch_size=BATCH,
                backend=missing[0], **BUILDERS["vamana"],
            )

    def test_unknown_backend_name_rejected(self, points):
        with pytest.raises(ValueError, match="unknown accel backend"):
            ProximityGraphIndex.build(
                points, method="vamana", seed=0, batch_size=BATCH,
                backend="fortran", **BUILDERS["vamana"],
            )

    def test_auto_unwarmed_builds_numpy_silently(self, points):
        """``backend="auto"`` before any warm() runs the numpy engines
        — bit-identical to the default build, and never a warning."""
        want_csr, _ = _reference(points, "vamana", 0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            got = ProximityGraphIndex.build(
                points, method="vamana", seed=0, batch_size=BATCH,
                backend="auto", **BUILDERS["vamana"],
            )
        _assert_same_graph(got, want_csr, "auto-unwarmed")

    @pytest.mark.skipif(not BACKENDS, reason="no warmable backend here")
    def test_auto_serves_warmed_backend_identically(self, points):
        accel.warm(BACKENDS[0])
        want_csr, _ = _reference(points, "vamana", 1)
        got = ProximityGraphIndex.build(
            points, method="vamana", seed=1, batch_size=BATCH,
            backend="auto", **BUILDERS["vamana"],
        )
        _assert_same_graph(got, want_csr, ("auto-warmed", BACKENDS[0]))

    @pytest.mark.skipif(not BACKENDS, reason="no warmable backend here")
    def test_unsupported_metric_explicit_raises_auto_falls_back(self, points):
        """No kernel route exists for Minkowski p=3: an explicit backend
        must raise the workload error, ``auto`` silently runs numpy."""
        metric = MinkowskiMetric(3.0)
        with pytest.raises(accel.UnsupportedWorkloadError):
            ProximityGraphIndex.build(
                points, method="vamana", seed=0, batch_size=BATCH,
                metric=metric, backend=BACKENDS[0], **BUILDERS["vamana"],
            )
        accel.warm(BACKENDS[0])
        want = ProximityGraphIndex.build(
            points, method="vamana", seed=0, batch_size=BATCH,
            metric=metric, **BUILDERS["vamana"],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            got = ProximityGraphIndex.build(
                points, method="vamana", seed=0, batch_size=BATCH,
                metric=metric, backend="auto", **BUILDERS["vamana"],
            )
        _assert_same_graph(got, _csr(want), "auto-unsupported-metric")


class TestShardedPooledBuild:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pooled_build_identity_under_spawn(self, points, backend):
        """Worker processes receive the concrete backend name, warm it
        from the on-disk kernel cache, and build each shard
        bit-identically to the in-process numpy build."""
        ref = ShardedIndex.build(
            points, method="vamana", seed=5, shards=2, workers=1,
            batch_size=BATCH, **BUILDERS["vamana"],
        )
        acc = ShardedIndex.build(
            points, method="vamana", seed=5, shards=2, workers=2,
            batch_size=BATCH, backend=backend, **BUILDERS["vamana"],
        )
        try:
            for j, (a, b) in enumerate(zip(ref.shards, acc.shards)):
                ao, at = a.graph.csr()
                bo, bt = b.graph.csr()
                assert np.array_equal(np.asarray(ao), np.asarray(bo)), (backend, j)
                assert np.array_equal(np.asarray(at), np.asarray(bt)), (backend, j)
        finally:
            ref.close()
            acc.close()
