"""Tests for the Section 4 adversarial metric family D = {D_{p*}}."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import AdversaryNotCommittedError, BlockAdversarialMetric


@pytest.fixture
def family():
    return BlockAdversarialMetric(side=3, copies=2, dim=2)


class TestConstruction:
    def test_sizes(self, family):
        assert family.block_size == 9
        assert family.n == 18
        assert family.query_id == 18

    def test_coordinates_layout(self, family):
        # Block 0 occupies [0,2]^2; block 1 is shifted by 2s = 6 in dim 0.
        assert family.coords[:9, 0].max() == 2
        assert family.coords[9:, 0].min() == 6
        assert family.coords[9:, 0].max() == 8

    def test_translation_vectors_are_block_members(self, family):
        for b in range(family.copies):
            members = family.coords[family.block_members(b)]
            assert any((family.w_coords[b] == row).all() for row in members)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BlockAdversarialMetric(side=1, copies=1, dim=1)
        with pytest.raises(ValueError):
            BlockAdversarialMetric(side=2, copies=0, dim=1)
        with pytest.raises(ValueError):
            BlockAdversarialMetric(side=2, copies=1, dim=0)


class TestUncommittedFamily:
    def test_intra_p_distances_are_linf(self, family):
        # id 0 = (0,0); id 1 = (0,1); id 4 = (1,1)
        assert family.distance(0, 1) == 1.0
        assert family.distance(0, 4) == 1.0
        assert family.distance(0, 8) == 2.0

    def test_cross_block_distance(self, family):
        # (0,0) in block 0 vs (6,0) in block 1.
        assert family.distance(0, 9) == 6.0

    def test_cross_block_at_least_s_plus_1(self, family):
        for p1 in family.block_members(0):
            d = family.distances(int(p1), family.block_members(1))
            assert (d >= family.side + 1).all()

    def test_query_distance_raises_before_commit(self, family):
        with pytest.raises(AdversaryNotCommittedError):
            family.distance(0, family.query_id)
        with pytest.raises(AdversaryNotCommittedError):
            family.distances(family.query_id, np.array([0, 1]))

    def test_family_members_agree_on_p(self):
        """Every committed metric gives the same intra-P distances — the
        information barrier the adversary argument rests on."""
        base = BlockAdversarialMetric(side=2, copies=2, dim=2)
        ids = base.point_ids()
        reference = np.array([base.distances(int(i), ids) for i in ids])
        for p_star in range(base.n):
            committed = BlockAdversarialMetric(2, 2, 2, p_star=p_star)
            got = np.array([committed.distances(int(i), ids) for i in ids])
            assert np.array_equal(got, reference)


class TestCommittedMetric:
    def test_query_distance_case_analysis(self):
        m = BlockAdversarialMetric(side=3, copies=2, dim=2, p_star=4)  # block 0
        q = m.query_id
        assert m.distance(4, q) == 2.0  # s - 1
        for p in m.block_members(0):
            if p != 4:
                assert m.distance(int(p), q) == 3.0  # s
        for p in m.block_members(1):
            # outside the star block: L_inf(p, w*) with w* = (0, 0)
            want = float(np.abs(m.coords[p]).max())
            assert m.distance(int(p), q) == want

    def test_query_self_distance_zero(self):
        m = BlockAdversarialMetric(side=2, copies=1, dim=1, p_star=0)
        assert m.distance(m.query_id, m.query_id) == 0.0

    def test_nn_of_query_is_p_star(self):
        for p_star in [0, 5, 13]:
            m = BlockAdversarialMetric(side=3, copies=2, dim=2, p_star=p_star)
            d = m.distances(m.query_id, m.point_ids())
            assert int(np.argmin(d)) == p_star
            assert d[p_star] == m.side - 1
            others = np.delete(d, p_star)
            assert (others >= m.side).all()

    def test_batch_matches_scalar_with_query(self):
        m = BlockAdversarialMetric(side=3, copies=3, dim=1, p_star=2)
        everything = np.arange(m.n + 1)
        for a in [0, 2, int(m.query_id)]:
            batch = m.distances(a, everything)
            for i, b in enumerate(everything):
                assert batch[i] == m.distance(a, int(b))

    @pytest.mark.parametrize("side,copies,dim", [(2, 1, 1), (3, 2, 1), (2, 2, 2)])
    def test_triangle_inequality_lemma_4_1(self, side, copies, dim):
        """Appendix D: every D_{p*} is a metric, including the phantom q."""
        base = BlockAdversarialMetric(side, copies, dim)
        everything = np.arange(base.n + 1)
        for p_star in range(base.n):
            m = BlockAdversarialMetric(side, copies, dim, p_star=p_star)
            m.check_axioms(everything)

    def test_epsilon_and_doubling_bounds(self):
        m = BlockAdversarialMetric(side=4, copies=2, dim=3)
        assert m.theoretical_epsilon() == pytest.approx(1 / 8)
        assert m.doubling_dimension_bound() == pytest.approx(np.log2(1 + 8))

    def test_aspect_ratio_is_linear_in_n(self):
        """Section 4's closing remark: diam < 2 s t, min distance 1."""
        m = BlockAdversarialMetric(side=3, copies=4, dim=2)
        ids = m.point_ids()
        diam = max(m.distances(int(i), ids).max() for i in ids)
        assert diam < 2 * m.side * m.copies
