"""The project-contract linter: every rule gets a true-positive fixture
(the violation it exists to catch) and a false-positive guard (the
idiomatic code it must pass), plus suppression semantics, exit codes,
and the whole-tree gate — ``repro lint src/repro`` must stay clean.

Deleting any single rule's implementation makes its true-positive test
here fail: each one selects exactly that rule and asserts it fires.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    ALL_RULES,
    Finding,
    LintConfig,
    LintError,
    Severity,
    lint_paths,
    lint_source,
)
from repro.cli import main

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def run_rule(source: str, rule_id: str, path: str = "<fixture>") -> list[Finding]:
    """Lint ``source`` with only ``rule_id`` enabled; unsuppressed hits."""
    findings = lint_source(
        textwrap.dedent(source),
        path=path,
        config=LintConfig(select=frozenset({rule_id})),
    )
    return [f for f in findings if not f.suppressed]


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------


class TestDeterminismRule:
    def test_unseeded_default_rng_fires(self):
        hits = run_rule(
            """
            import numpy as np

            def sample(points):
                rng = np.random.default_rng()
                return rng.choice(points)
            """,
            "determinism",
        )
        assert any("unseeded" in f.message for f in hits)

    def test_global_numpy_rng_fires(self):
        hits = run_rule(
            """
            import numpy as np

            def jitter(x):
                return x + np.random.randn(3)
            """,
            "determinism",
        )
        assert any("global RNG" in f.message for f in hits)

    def test_stdlib_random_fires(self):
        hits = run_rule(
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
            "determinism",
        )
        assert any("process-global" in f.message for f in hits)

    def test_time_derived_seed_fires(self):
        hits = run_rule(
            """
            import time
            import numpy as np

            def sample():
                return np.random.default_rng(time.time_ns())
            """,
            "determinism",
        )
        assert any("time/entropy-derived" in f.message for f in hits)

    def test_uuid4_fires(self):
        hits = run_rule(
            """
            import uuid

            def token():
                return uuid.uuid4().hex
            """,
            "determinism",
        )
        assert any("uuid.uuid4" in f.message for f in hits)

    def test_seeded_rng_passes(self):
        assert not run_rule(
            """
            import numpy as np

            def sample(points, seed):
                rng = np.random.default_rng(seed)
                other = np.random.default_rng(0)
                r = random_state = np.random.Generator(np.random.PCG64(seed))
                return rng.choice(points), other.random(), r.integers(3)
            """,
            "determinism",
        )

    def test_generator_methods_pass(self):
        # ``rng.random()``/``self.rng.shuffle()`` are Generator methods,
        # not the global-state module functions.
        assert not run_rule(
            """
            def walk(self, rng):
                rng.shuffle(self.items)
                return self.rng.random()
            """,
            "determinism",
        )

    def test_benchmarks_and_tests_exempt(self):
        source = """
        import numpy as np

        def load():
            return np.random.default_rng()
        """
        assert not run_rule(source, "determinism", path="benchmarks/bench_x.py")
        assert not run_rule(source, "determinism", path="tests/test_x.py")
        assert run_rule(source, "determinism", path="src/repro/core/x.py")


# ----------------------------------------------------------------------
# async-blocking
# ----------------------------------------------------------------------


class TestAsyncBlockingRule:
    def test_time_sleep_in_async_fires(self):
        hits = run_rule(
            """
            import time

            async def handler(request):
                time.sleep(0.1)
                return request
            """,
            "async-blocking",
        )
        assert any("time.sleep" in f.message for f in hits)

    def test_direct_index_search_in_async_fires(self):
        hits = run_rule(
            """
            async def handler(index, q):
                return index.search(q, k=10)
            """,
            "async-blocking",
        )
        assert any(".search()" in f.message for f in hits)

    def test_open_and_sockets_fire(self):
        hits = run_rule(
            """
            import socket

            async def fetch(path):
                sock = socket.socket()
                sock.connect(("localhost", 80))
                with open(path) as fh:
                    return fh.read()
            """,
            "async-blocking",
        )
        messages = " ".join(f.message for f in hits)
        assert "socket" in messages and "open()" in messages

    def test_executor_lambda_passes(self):
        # The serving layer's idiom: blocking work inside a lambda that
        # run_in_executor ships off the loop.  The lambda body is a
        # different execution context and must not be flagged.
        assert not run_rule(
            """
            import asyncio

            async def handler(loop, pool, index, q):
                await asyncio.sleep(0)
                return await loop.run_in_executor(
                    pool, lambda: index.search(q, k=10)
                )
            """,
            "async-blocking",
        )

    def test_sync_function_not_flagged(self):
        assert not run_rule(
            """
            import time

            def warm_up(index, q):
                time.sleep(0.1)
                return index.search(q)
            """,
            "async-blocking",
        )

    def test_re_search_passes(self):
        assert not run_rule(
            """
            import re

            async def route(path):
                return re.search(r"^/v1/", path)
            """,
            "async-blocking",
        )


# ----------------------------------------------------------------------
# async-lock-held
# ----------------------------------------------------------------------


class TestAsyncLockHeldRule:
    def test_sync_lock_across_await_fires(self):
        hits = run_rule(
            """
            async def mutate(self, fn):
                with self._write_lock:
                    await self.flush()
            """,
            "async-lock-held",
        )
        assert any("held across await" in f.message for f in hits)

    def test_async_lock_passes(self):
        assert not run_rule(
            """
            async def mutate(self, fn):
                async with self._lock:
                    await self.flush()
            """,
            "async-lock-held",
        )

    def test_lock_released_before_await_passes(self):
        assert not run_rule(
            """
            async def mutate(self, fn):
                with self._lock:
                    snapshot = self.state
                await self.flush(snapshot)
            """,
            "async-lock-held",
        )

    def test_non_lock_context_passes(self):
        assert not run_rule(
            """
            async def fetch(self, session):
                with self.timer:
                    await session.get("/")
            """,
            "async-lock-held",
        )


# ----------------------------------------------------------------------
# spawn-safety
# ----------------------------------------------------------------------


class TestSpawnSafetyRule:
    def test_lambda_to_pool_map_fires(self):
        hits = run_rule(
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(tasks):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(lambda t: t + 1, tasks))
            """,
            "spawn-safety",
        )
        assert any("lambda" in f.message for f in hits)

    def test_local_def_to_pool_submit_fires(self):
        hits = run_rule(
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(tasks):
                def work(t):
                    return t + 1

                pool = ProcessPoolExecutor()
                return [pool.submit(work, t) for t in tasks]
            """,
            "spawn-safety",
        )
        assert any("work" in f.message for f in hits)

    def test_lambda_initializer_fires(self):
        hits = run_rule(
            """
            from concurrent.futures import ProcessPoolExecutor

            def run():
                return ProcessPoolExecutor(initializer=lambda: None)
            """,
            "spawn-safety",
        )
        assert any("initializer" in f.message for f in hits)

    def test_lazy_pool_attribute_fires(self):
        # The ``self._pool`` / ``_ensure_pool()`` pattern sharded.py
        # uses must still be seen through.
        hits = run_rule(
            """
            from concurrent.futures import ProcessPoolExecutor

            class Fanout:
                def _ensure_pool(self):
                    self._pool = ProcessPoolExecutor(4)
                    return self._pool

                def search(self, tasks):
                    return list(
                        self._ensure_pool().map(lambda t: t, tasks)
                    )
            """,
            "spawn-safety",
        )
        assert hits

    def test_module_level_function_passes(self):
        assert not run_rule(
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(task):
                return task + 1

            def run(tasks):
                with ProcessPoolExecutor(
                    initializer=work, initargs=(0,)
                ) as pool:
                    return list(pool.map(work, tasks))
            """,
            "spawn-safety",
        )

    def test_thread_pool_lambda_passes(self):
        # Thread pools share the address space; lambdas are fine there
        # (and are the serving layer's executor idiom).
        assert not run_rule(
            """
            from concurrent.futures import ThreadPoolExecutor

            def run(tasks):
                with ThreadPoolExecutor() as pool:
                    return list(pool.map(lambda t: t + 1, tasks))
            """,
            "spawn-safety",
        )


# ----------------------------------------------------------------------
# arena-hygiene
# ----------------------------------------------------------------------


class TestArenaHygieneRule:
    def test_bare_creation_fires(self):
        hits = run_rule(
            """
            from multiprocessing import shared_memory

            def stage(nbytes):
                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                return shm.name
            """,
            "arena-hygiene",
        )
        assert any("close/unlink" in f.message for f in hits)

    def test_unreleased_arena_create_fires(self):
        hits = run_rule(
            """
            def build(points):
                arena = SharedArena.create(points)
                return arena.spec
            """,
            "arena-hygiene",
        )
        assert hits

    def test_context_manager_passes(self):
        assert not run_rule(
            """
            def stage(points):
                with SharedArena.create(points) as arena:
                    return use(arena)
            """,
            "arena-hygiene",
        )

    def test_finally_close_passes(self):
        assert not run_rule(
            """
            def stage(spec):
                attachment = attach(spec)
                try:
                    return use(attachment)
                finally:
                    attachment.close()
            """,
            "arena-hygiene",
        )

    def test_ownership_transfer_passes(self):
        # Returning the handle directly or storing it on an attribute
        # hands lifecycle ownership to the caller/object.
        assert not run_rule(
            """
            def open_arena(spec):
                return AttachedArena(spec)

            class Holder:
                def bind(self, spec):
                    self._shm = SharedMemory(name=spec.name)
            """,
            "arena-hygiene",
        )


# ----------------------------------------------------------------------
# mmap-hygiene
# ----------------------------------------------------------------------


class TestMmapHygieneRule:
    def test_unowned_local_mapping_fires(self):
        hits = run_rule(
            """
            import numpy as np

            def peek(path, shape):
                arr = np.memmap(path, dtype="float64", mode="r", shape=shape)
                return float(arr[0, 0])
            """,
            "mmap-hygiene",
        )
        assert any("ownership" in f.message or "mapping" in f.message
                   for f in hits)

    def test_bare_raw_mmap_fires(self):
        assert run_rule(
            """
            import mmap

            def scan(fd, size):
                buf = mmap.mmap(fd, size)
                return buf[:16]
            """,
            "mmap-hygiene",
        )

    def test_return_transfer_passes(self):
        # The v5 loader's blessed idiom: the helper returns the mapping,
        # the adopting dataset/store/graph owns it for the index's life.
        assert not run_rule(
            """
            import numpy as np

            def attach(path, dtype, shape):
                return np.memmap(path, dtype=dtype, mode="r", shape=shape)
            """,
            "mmap-hygiene",
        )

    def test_nested_return_transfer_passes(self):
        # Ownership also transfers when the creation is nested inside
        # the returned expression (the wrapper adopts the mapping).
        assert not run_rule(
            """
            import numpy as np

            def open_store(inner, path, shape):
                return DiskTierStore(
                    inner, np.memmap(path, dtype="f8", mode="r", shape=shape)
                )
            """,
            "mmap-hygiene",
        )

    def test_attribute_assignment_passes(self):
        assert not run_rule(
            """
            import numpy as np

            class Holder:
                def bind(self, path, shape):
                    self._vectors = np.memmap(
                        path, dtype="f8", mode="r", shape=shape
                    )
            """,
            "mmap-hygiene",
        )

    def test_finally_close_passes(self):
        assert not run_rule(
            """
            import numpy as np

            def checksum(path, shape):
                arr = np.memmap(path, dtype="f8", mode="r", shape=shape)
                try:
                    return float(arr.sum())
                finally:
                    arr._mmap.close()
            """,
            "mmap-hygiene",
        )

    def test_with_block_passes(self):
        assert not run_rule(
            """
            import mmap

            def scan(fd, size):
                with mmap.mmap(fd, size) as buf:
                    return buf[:16]
            """,
            "mmap-hygiene",
        )

    def test_suppression_comment(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import numpy as np

                def peek(path):
                    arr = np.memmap(path, dtype="u1", mode="r")  # repro: ignore[mmap-hygiene]
                    return arr[0]
                """
            ),
            path="<fixture>",
            config=LintConfig(select=frozenset({"mmap-hygiene"})),
        )
        assert findings and all(f.suppressed for f in findings)


# ----------------------------------------------------------------------
# kernel-parity
# ----------------------------------------------------------------------


class TestKernelParityRule:
    def test_missing_store_kind_fires(self):
        hits = run_rule(
            """
            def _plan(dataset, store, Q):
                kind = store.kind
                if kind == "flat":
                    return make_flat_plan()
                raise UnsupportedWorkloadError(kind)
            """,
            "kernel-parity",
        )
        missing = " ".join(f.message for f in hits)
        assert "'sq8'" in missing and "'pq'" in missing

    def test_missing_metric_fires(self):
        hits = run_rule(
            """
            def _plan(dataset, store, Q):
                kind = store.kind
                if kind in ("flat", "sq8", "pq"):
                    return _coord_kind(dataset.metric)

            def _coord_kind(metric):
                if isinstance(metric, EuclideanMetric):
                    return 0
                raise UnsupportedWorkloadError(metric)
            """,
            "kernel-parity",
        )
        assert any("ChebyshevMetric" in f.message for f in hits)

    def test_missing_fp_contract_flag_fires(self):
        hits = run_rule(
            """
            _CFLAGS = ["-O2", "-fPIC", "-shared"]
            """,
            "kernel-parity",
        )
        assert any("-ffp-contract=off" in f.message for f in hits)

    FULL_COVERAGE = """
        _CFLAGS = ["-O2", "-fPIC", "-ffp-contract=off"]

        def _plan(dataset, store, Q):
            kind = store.kind
            if kind == "flat":
                return flat_plan()
            elif kind == "sq8":
                return sq8_plan()
            elif kind == "pq":
                return pq_plan()
            raise UnsupportedWorkloadError(kind)

        def _coord_kind(metric):
            if isinstance(metric, EuclideanMetric):
                return 0
            if isinstance(metric, ChebyshevMetric):
                return 1
            raise UnsupportedWorkloadError(metric)

        def run_construction(backend, graph, dataset, starts, queries):
            return _plan(dataset, None, queries)

        def run_robust_prune(backend, dataset, pid, v_arr, d_arr):
            kind, factor = _coord_kind(dataset.metric)
            return kind

        def run_commit_wave(backend, dataset, adj, pids, pools):
            kind, factor = _coord_kind(dataset.metric)
            return kind
        """

    def test_full_coverage_passes(self):
        assert not run_rule(self.FULL_COVERAGE, "kernel-parity")

    def test_missing_construction_entry_point_fires(self):
        """A dispatch module whose construction path lost an entry point
        (here: no run_commit_wave at all) must fire."""
        src = self.FULL_COVERAGE.replace(
            "def run_commit_wave", "def some_other_helper"
        )
        hits = run_rule(src, "kernel-parity")
        assert any("run_commit_wave" in f.message for f in hits)

    def test_construction_bypassing_workload_table_fires(self):
        """A construction entry point that classifies its own workload
        inline (never consulting _coord_kind) silently loses metric
        coverage — true positive."""
        src = self.FULL_COVERAGE.replace(
            """def run_robust_prune(backend, dataset, pid, v_arr, d_arr):
            kind, factor = _coord_kind(dataset.metric)
            return kind""",
            """def run_robust_prune(backend, dataset, pid, v_arr, d_arr):
            if isinstance(dataset.metric, EuclideanMetric):
                return 0
            return 1""",
        )
        hits = run_rule(src, "kernel-parity")
        assert any(
            "run_robust_prune" in f.message and "_coord_kind" in f.message
            for f in hits
        )

    def test_locate_bypassing_plan_fires(self):
        src = self.FULL_COVERAGE.replace(
            "return _plan(dataset, None, queries)",
            "return flat_plan()",
        )
        hits = run_rule(src, "kernel-parity")
        assert any(
            "run_construction" in f.message and "_plan" in f.message
            for f in hits
        )

    def test_real_dispatch_module_passes(self):
        """False-positive guard: the shipped dispatch module satisfies
        the construction-coverage contract."""
        src = (REPO_SRC / "accel" / "dispatch.py").read_text()
        hits = run_rule(src, "kernel-parity", path=str(REPO_SRC / "accel" / "dispatch.py"))
        assert not hits

    def test_unrelated_module_passes(self):
        assert not run_rule(
            """
            def plan_dinner(kind):
                if kind == "flat":
                    return "pancakes"
            """,
            "kernel-parity",
        )


# ----------------------------------------------------------------------
# shim-shape
# ----------------------------------------------------------------------


class TestShimShapeRule:
    def test_unlatched_deprecation_fires(self):
        hits = run_rule(
            """
            import warnings

            def query(self, q):
                warnings.warn("use search()", DeprecationWarning, stacklevel=2)
                return self.search(q)
            """,
            "shim-shape",
        )
        assert any("warn-once" in f.message for f in hits)

    def test_module_level_deprecation_fires(self):
        hits = run_rule(
            """
            import warnings

            warnings.warn("legacy module", DeprecationWarning)
            """,
            "shim-shape",
        )
        assert any("module-level" in f.message for f in hits)

    def test_set_latch_pattern_passes(self):
        # The pinned core/index.py shape.
        assert not run_rule(
            """
            import warnings

            _DEPRECATION_WARNED = set()

            def _warn_deprecated(name, hint):
                if name in _DEPRECATION_WARNED:
                    return
                _DEPRECATION_WARNED.add(name)
                warnings.warn(
                    f"{name} is deprecated; {hint}",
                    DeprecationWarning,
                    stacklevel=3,
                )
            """,
            "shim-shape",
        )

    def test_boolean_latch_pattern_passes(self):
        # The pinned baselines/vamana.py module-__getattr__ shape.
        assert not run_rule(
            """
            import warnings

            _DELEGATE_WARNED = False

            def __getattr__(name):
                global _DELEGATE_WARNED
                if name == "_robust_prune":
                    if not _DELEGATE_WARNED:
                        warnings.warn(
                            "delegate moved", DeprecationWarning, stacklevel=2
                        )
                        _DELEGATE_WARNED = True
                    return _engine_robust_prune
                raise AttributeError(name)
            """,
            "shim-shape",
        )

    def test_other_warning_categories_pass(self):
        assert not run_rule(
            """
            import warnings

            def fallback():
                warnings.warn("no compiled backend", RuntimeWarning)
            """,
            "shim-shape",
        )


# ----------------------------------------------------------------------
# unused-symbol
# ----------------------------------------------------------------------


class TestUnusedSymbolRule:
    def test_unused_import_fires(self):
        hits = run_rule(
            """
            import os
            import json

            def dump(payload):
                return json.dumps(payload)
            """,
            "unused-symbol",
        )
        assert any("'os'" in f.message for f in hits)
        assert not any("'json'" in f.message for f in hits)

    def test_unused_from_import_fires(self):
        hits = run_rule(
            """
            from pathlib import Path, PurePath

            def norm(p):
                return Path(p)
            """,
            "unused-symbol",
        )
        assert any("'PurePath'" in f.message for f in hits)

    def test_init_reexport_surface_exempt(self):
        source = """
        from repro.core.search import SearchParams
        """
        assert not run_rule(
            source, "unused-symbol", path="src/repro/fake/__init__.py"
        )
        assert run_rule(source, "unused-symbol", path="src/repro/fake/mod.py")

    def test_quoted_annotation_counts_as_use(self):
        assert not run_rule(
            """
            import numpy as np

            def zeros(n) -> "np.ndarray":
                return [0] * n
            """,
            "unused-symbol",
        )

    def test_all_export_counts_as_use(self):
        assert not run_rule(
            """
            from repro.core.search import SearchParams

            __all__ = ["SearchParams"]
            """,
            "unused-symbol",
        )

    def test_import_as_self_exempt(self):
        assert not run_rule(
            """
            from repro.core import search as search
            """,
            "unused-symbol",
        )


# ----------------------------------------------------------------------
# typing-complete
# ----------------------------------------------------------------------


class TestTypingCompleteRule:
    def test_unannotated_def_fires(self):
        hits = run_rule(
            """
            def merge(a, b):
                return a + b
            """,
            "typing-complete",
        )
        assert any("missing annotations" in f.message for f in hits)

    def test_missing_return_fires(self):
        hits = run_rule(
            """
            def scale(x: float, factor: float = 2.0):
                return x * factor
            """,
            "typing-complete",
        )
        assert any("return" in f.message for f in hits)

    def test_annotated_def_passes(self):
        assert not run_rule(
            """
            from typing import Any

            class Store:
                def __init__(self, capacity: int = 8) -> None:
                    self.capacity = capacity

                def put(self, key: str, *rest: Any, **opts: Any) -> bool:
                    return True

                @classmethod
                def empty(cls) -> "Store":
                    return cls(0)
            """,
            "typing-complete",
        )

    def test_out_of_scope_package_exempt(self):
        assert not run_rule(
            "def helper(x):\n    return x\n",
            "typing-complete",
            path="src/repro/graphs/helper.py",
        )
        assert run_rule(
            "def helper(x):\n    return x\n",
            "typing-complete",
            path="src/repro/core/helper.py",
        )


# ----------------------------------------------------------------------
# Suppressions, config, exit codes
# ----------------------------------------------------------------------


class TestSuppressions:
    SOURCE = """
    import numpy as np

    def sample():
        return np.random.default_rng()
    """

    def test_matching_id_suppresses(self):
        src = textwrap.dedent(self.SOURCE).replace(
            "np.random.default_rng()",
            "np.random.default_rng()  # repro: ignore[determinism] fixture",
        )
        findings = lint_source(
            src, config=LintConfig(select=frozenset({"determinism"}))
        )
        assert findings and all(f.suppressed for f in findings)

    def test_bare_ignore_suppresses_everything(self):
        src = textwrap.dedent(self.SOURCE).replace(
            "np.random.default_rng()",
            "np.random.default_rng()  # repro: ignore",
        )
        findings = lint_source(src)
        assert all(f.suppressed for f in findings if f.line == 5)

    def test_unrelated_id_does_not_suppress(self):
        src = textwrap.dedent(self.SOURCE).replace(
            "np.random.default_rng()",
            "np.random.default_rng()  # repro: ignore[arena-hygiene]",
        )
        findings = lint_source(
            src, config=LintConfig(select=frozenset({"determinism"}))
        )
        assert any(not f.suppressed for f in findings)

    def test_suppression_is_line_scoped(self):
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng()  # repro: ignore[determinism]\n"
            "b = np.random.default_rng()\n"
        )
        findings = lint_source(
            src, config=LintConfig(select=frozenset({"determinism"}))
        )
        assert [f.suppressed for f in sorted(findings, key=lambda f: f.line)] == [
            True,
            False,
        ]

    def test_severity_override_drops_exit_code(self):
        from repro.analysis.lint.engine import LintReport

        findings = lint_source(
            "import os\n",
            config=LintConfig(
                select=frozenset({"unused-symbol"}),
                severity_overrides={"unused-symbol": Severity.WARNING},
            ),
        )
        report = LintReport(findings=findings, files_checked=1)
        assert findings and report.exit_code == 0


class TestCliLint:
    def make_tree(self, tmp_path: Path, body: str) -> Path:
        mod = tmp_path / "mod.py"
        mod.write_text(textwrap.dedent(body))
        return mod

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        self.make_tree(
            tmp_path,
            """
            import json

            def dump(payload: object) -> str:
                return json.dumps(payload)
            """,
        )
        assert main(["lint", str(tmp_path)]) == 0

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        self.make_tree(
            tmp_path,
            """
            import numpy as np

            def sample() -> float:
                return np.random.default_rng().random()
            """,
        )
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out

    def test_suppressed_findings_exit_zero(self, tmp_path, capsys):
        self.make_tree(
            tmp_path,
            """
            import numpy as np

            def sample() -> float:
                rng = np.random.default_rng()  # repro: ignore[determinism] fixture
                return rng.random()
            """,
        )
        assert main(["lint", str(tmp_path)]) == 0

    def test_json_format(self, tmp_path, capsys):
        self.make_tree(tmp_path, "import os\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert any(f["rule"] == "unused-symbol" for f in payload["findings"])

    def test_select_limits_rules(self, tmp_path, capsys):
        self.make_tree(
            tmp_path,
            """
            import os
            import numpy as np

            def sample():
                return np.random.default_rng()
            """,
        )
        assert main(["lint", str(tmp_path), "--select", "unused-symbol"]) == 1
        out = capsys.readouterr().out
        assert "[unused-symbol]" in out and "[determinism]" not in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert main(["lint"]) == 2

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(bad)]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in ALL_RULES:
            assert cls.id in out


# ----------------------------------------------------------------------
# The whole-tree gate (the acceptance criterion itself)
# ----------------------------------------------------------------------


class TestWholeTreeGate:
    def test_src_repro_lints_clean(self):
        """``repro lint src/repro`` exits 0: zero unsuppressed findings
        on the shipped tree.  Any new contract violation fails here
        before it fails in production."""
        report = lint_paths([REPO_SRC])
        assert report.files_checked > 50
        unsuppressed = report.unsuppressed
        assert unsuppressed == [], "\n".join(f.render() for f in unsuppressed)

    def test_every_suppression_in_tree_is_justified(self):
        """Each ``# repro: ignore`` in the tree carries an explanation
        (non-empty trailing text or an adjacent comment) and names an
        explicit rule id — bare blanket suppressions are banned in
        shipped code."""
        import io
        import re
        import tokenize

        pattern = re.compile(r"#\s*repro:\s*ignore(\[[^\]]*\])?(.*)")
        for path in sorted(REPO_SRC.rglob("*.py")):
            source = path.read_text()
            lines = source.splitlines()
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type != tokenize.COMMENT:
                    continue
                m = pattern.search(tok.string)
                if m is None:
                    continue
                lineno = tok.start[0]
                # Only trailing comments are live suppressions; full-line
                # comments (documentation about the syntax) are inert
                # because no finding can land on a comment-only line.
                if not lines[lineno - 1][: tok.start[1]].strip():
                    continue
                where = f"{path}:{lineno}"
                assert m.group(1), f"{where}: suppression must name a rule id"
                prev = lines[lineno - 2].strip() if lineno >= 2 else ""
                justified = bool(m.group(2).strip()) or prev.startswith("#")
                assert justified, f"{where}: suppression needs a justification"

    def test_every_rule_has_distinct_id(self):
        ids = [cls.id for cls in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 6  # the issue's floor; we ship more

    def test_lint_error_is_importable_surface(self):
        assert issubclass(LintError, Exception)
