"""Tests for the analysis toolkit and the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import fit_linear, fit_power_law, gnet_theory_report
from repro.cli import main
from repro.graphs import build_gnet
from repro.workloads import make_dataset, uniform_cube


class TestPowerLawFit:
    def test_recovers_exact_exponent(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        fit = fit_power_law(x, 3.0 * x**2)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.constant == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [5, 10, 20])
        assert fit.predict(8) == pytest.approx(40.0)

    def test_leave_one_out_range_contains_estimate(self, rng):
        x = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        y = 2.0 * x**1.5 * np.exp(rng.normal(0, 0.05, size=5))
        fit = fit_power_law(x, y)
        lo, hi = fit.exponent_range
        assert lo <= fit.exponent <= hi
        assert hi - lo < 0.5

    def test_two_points_degenerate_range(self):
        fit = fit_power_law([1.0, 2.0], [1.0, 4.0])
        assert fit.exponent_range == (fit.exponent, fit.exponent)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="identical"):
            fit_power_law([2.0, 2.0], [1.0, 2.0])


class TestLinearFit:
    def test_recovers_line(self):
        fit = fit_linear([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_r_squared_degrades_with_noise(self, rng):
        x = np.linspace(0, 10, 30)
        clean = fit_linear(x, 2 * x)
        noisy = fit_linear(x, 2 * x + rng.normal(0, 5, size=30))
        assert noisy.r_squared < clean.r_squared


class TestTheoryReport:
    def test_bounds_dominate_measurements(self, rng):
        ds = make_dataset(uniform_cube(150, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        report = gnet_theory_report(res, doubling_dimension=2.0)
        assert report.edges_measured <= report.edges_bound
        assert report.max_degree_measured <= report.max_degree_bound
        assert report.edge_slack >= 1.0
        assert len(report.rows()) == 2

    def test_per_level_accounting(self, rng):
        ds = make_dataset(uniform_cube(100, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        report = gnet_theory_report(res, doubling_dimension=2.0)
        assert sum(report.per_level_edges) == report.edges_measured
        assert report.per_level_sizes[0] == 100


@pytest.fixture
def points_file(tmp_path, rng):
    pts = uniform_cube(80, 2, rng)
    path = tmp_path / "points.npy"
    np.save(path, pts)
    return path


class TestCli:
    def test_builders_lists_registry(self, capsys):
        assert main(["builders"]) == 0
        out = capsys.readouterr().out
        assert "gnet" in out and "hnsw" in out

    def test_build_writes_graph_and_sidecar(self, points_file, tmp_path, capsys):
        graph_path = tmp_path / "g.npz"
        code = main(
            ["build", str(points_file), str(graph_path), "--method", "gnet",
             "--epsilon", "1.0"]
        )
        assert code == 0
        assert graph_path.exists()
        meta = json.loads((tmp_path / "g.json").read_text())
        assert meta["method"] == "gnet"
        assert meta["edges"] > 0

    def test_query_roundtrip(self, points_file, tmp_path, capsys):
        graph_path = tmp_path / "g.npz"
        main(["build", str(points_file), str(graph_path), "--epsilon", "1.0"])
        capsys.readouterr()
        code = main(
            ["query", str(points_file), str(graph_path), "--q", "0.5", "0.5"]
        )
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert 0 <= out["point_id"] < 80
        assert out["distance"] >= 0

    def test_stats(self, points_file, tmp_path, capsys):
        graph_path = tmp_path / "g.npz"
        main(["build", str(points_file), str(graph_path)])
        capsys.readouterr()
        assert main(["stats", str(points_file), str(graph_path)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["n"] == 80

    def test_validate_clean_graph(self, points_file, tmp_path, capsys):
        graph_path = tmp_path / "g.npz"
        main(["build", str(points_file), str(graph_path), "--epsilon", "1.0"])
        capsys.readouterr()
        code = main(
            ["validate", str(points_file), str(graph_path), "--queries", "40"]
        )
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["violations"] == 0

    def test_validate_flags_bad_graph(self, points_file, tmp_path, capsys, rng):
        # Two clusters + knn graph: validation must exit nonzero.
        a = rng.normal(0, 0.01, size=(30, 2))
        b = rng.normal(0, 0.01, size=(30, 2)) + 7.0
        pts_path = tmp_path / "two.npy"
        np.save(pts_path, np.vstack([a, b]))
        graph_path = tmp_path / "bad.npz"
        main(["build", str(pts_path), str(graph_path), "--method", "knn",
              "--epsilon", "0.5"])
        capsys.readouterr()
        code = main(
            ["validate", str(pts_path), str(graph_path), "--queries", "60"]
        )
        assert code == 1

    def test_graph_points_mismatch_rejected(self, points_file, tmp_path, rng):
        graph_path = tmp_path / "g.npz"
        main(["build", str(points_file), str(graph_path)])
        other = tmp_path / "other.npy"
        np.save(other, uniform_cube(10, 2, rng))
        with pytest.raises(SystemExit):
            main(["stats", str(other), str(graph_path)])


class TestTraceReport:
    def test_annotations_and_log_drop(self, rng):
        from repro.analysis import trace_report
        from repro.graphs import build_gnet

        ds = make_dataset(uniform_cube(120, 2, rng))
        res = build_gnet(ds, epsilon=0.5)
        pts = np.asarray(ds.points)
        q = pts[17] + 1e-7  # near-data: demanding target
        dists = np.linalg.norm(pts - q, axis=1)
        start = int(np.argmax(dists))
        report = trace_report(res.graph, ds, start, q, epsilon=0.5)
        assert report.first_ann_hop is not None
        assert report.first_ann_hop <= res.params.height + 1
        assert report.log_drops_strict()
        # distances to q strictly decrease along the trace
        dq = [r.distance_to_query for r in report.records]
        assert all(a > b for a, b in zip(dq, dq[1:]))

    def test_render_contains_every_hop(self, rng):
        from repro.analysis import trace_report
        from repro.graphs import build_gnet

        ds = make_dataset(uniform_cube(60, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        report = trace_report(res.graph, ds, 0, rng.uniform(0, 20, size=2), 1.0)
        text = report.render()
        assert text.count("hop ") == report.hops
        assert "distance evals" in text

    def test_budgeted_trace(self, rng):
        from repro.analysis import trace_report
        from repro.graphs import build_gnet

        ds = make_dataset(uniform_cube(60, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        report = trace_report(
            res.graph, ds, 0, rng.uniform(0, 20, size=2), 1.0, budget=5
        )
        assert report.distance_evals <= 5
