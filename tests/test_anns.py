"""Tests for the dynamic ANN substrates: brute force (oracle), cover tree,
and hash grid — including cross-validation among them."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anns import BruteForceANN, CoverTree, GridANN
from repro.metrics import ChebyshevMetric, Dataset, EuclideanMetric, TreeMetric


def _random_dataset(rng, n=60, dim=2):
    pts = rng.uniform(0, 100, size=(n, dim))
    return Dataset(EuclideanMetric(), pts)


class TestBruteForce:
    def test_nearest_matches_scan(self, rng):
        ds = _random_dataset(rng)
        ann = BruteForceANN(ds, point_ids=range(ds.n))
        q = rng.uniform(0, 100, size=2)
        got = ann.nearest(q)
        want = ds.nearest_neighbor(q)
        assert got == (want[0], pytest.approx(want[1]))

    def test_knn_sorted_and_correct(self, rng):
        ds = _random_dataset(rng)
        ann = BruteForceANN(ds, point_ids=range(ds.n))
        q = rng.uniform(0, 100, size=2)
        got = ann.knn(q, 5)
        dists = ds.distances_to_query_all(q)
        want_ids = set(np.argsort(dists)[:5].tolist())
        assert [round(d, 9) for _, d in got] == sorted(round(d, 9) for _, d in got)
        assert {i for i, _ in got} == want_ids

    def test_range_search(self, rng):
        ds = _random_dataset(rng)
        ann = BruteForceANN(ds, point_ids=range(ds.n))
        q = rng.uniform(0, 100, size=2)
        got = {i for i, _ in ann.range_search(q, 20.0)}
        want = set(np.flatnonzero(ds.distances_to_query_all(q) <= 20.0).tolist())
        assert got == want

    def test_delete_and_reinsert(self, rng):
        ds = _random_dataset(rng)
        ann = BruteForceANN(ds, point_ids=range(ds.n))
        q = ds.points[3]
        assert ann.nearest(q)[0] == 3
        ann.delete(3)
        assert ann.nearest(q)[0] != 3
        ann.insert(3)
        assert ann.nearest(q)[0] == 3

    def test_empty_structure(self, rng):
        ds = _random_dataset(rng)
        ann = BruteForceANN(ds)
        assert ann.nearest(ds.points[0]) is None
        assert ann.knn(ds.points[0], 3) == []
        assert len(ann) == 0

    def test_second_nearest_to_id(self, rng):
        ds = _random_dataset(rng)
        ann = BruteForceANN(ds, point_ids=range(ds.n))
        sid, sd = ann.second_nearest_to_id(7)
        row = ds.distances_from_index_to_all(7)
        row[7] = np.inf
        assert sid == int(np.argmin(row))
        assert sd == pytest.approx(row.min())


class TestCoverTree:
    def test_matches_bruteforce_nearest(self, rng):
        ds = _random_dataset(rng, n=100)
        tree = CoverTree(ds, point_ids=range(ds.n))
        brute = BruteForceANN(ds, point_ids=range(ds.n))
        for _ in range(30):
            q = rng.uniform(-20, 120, size=2)
            got, want = tree.nearest(q), brute.nearest(q)
            assert got[1] == pytest.approx(want[1])

    def test_matches_bruteforce_knn(self, rng):
        ds = _random_dataset(rng, n=80)
        tree = CoverTree(ds, point_ids=range(ds.n))
        brute = BruteForceANN(ds, point_ids=range(ds.n))
        for _ in range(15):
            q = rng.uniform(0, 100, size=2)
            got = [round(d, 9) for _, d in tree.knn(q, 7)]
            want = [round(d, 9) for _, d in brute.knn(q, 7)]
            assert got == want

    def test_matches_bruteforce_range(self, rng):
        ds = _random_dataset(rng, n=80)
        tree = CoverTree(ds, point_ids=range(ds.n))
        brute = BruteForceANN(ds, point_ids=range(ds.n))
        for radius in [5.0, 25.0, 80.0]:
            q = rng.uniform(0, 100, size=2)
            got = {i for i, _ in tree.range_search(q, radius)}
            want = {i for i, _ in brute.range_search(q, radius)}
            assert got == want

    def test_invariants_after_random_build(self, rng):
        ds = _random_dataset(rng, n=70)
        tree = CoverTree(ds, point_ids=rng.permutation(ds.n))
        tree.check_invariants()

    def test_deletions_respected(self, rng):
        ds = _random_dataset(rng, n=50)
        tree = CoverTree(ds, point_ids=range(ds.n))
        brute = BruteForceANN(ds, point_ids=range(ds.n))
        victims = rng.choice(ds.n, size=20, replace=False)
        for v in victims:
            tree.delete(int(v))
            brute.delete(int(v))
        for _ in range(20):
            q = rng.uniform(0, 100, size=2)
            assert tree.nearest(q)[1] == pytest.approx(brute.nearest(q)[1])

    def test_delete_reinsert_cycle(self, rng):
        """The Section 2.4 usage pattern: delete a batch, re-insert it."""
        ds = _random_dataset(rng, n=40)
        tree = CoverTree(ds, point_ids=range(ds.n))
        for _ in range(5):
            batch = rng.choice(ds.n, size=10, replace=False)
            for v in batch:
                tree.delete(int(v))
            for v in batch:
                tree.insert(int(v))
        assert len(tree) == ds.n
        brute = BruteForceANN(ds, point_ids=range(ds.n))
        q = rng.uniform(0, 100, size=2)
        assert tree.nearest(q)[1] == pytest.approx(brute.nearest(q)[1])

    def test_rebuild_drops_tombstones(self, rng):
        ds = _random_dataset(rng, n=30)
        tree = CoverTree(ds, point_ids=range(ds.n))
        for v in range(16):  # more than half triggers rebuild
            tree.delete(v)
        assert len(tree._dead) == 0  # rebuild happened
        assert len(tree) == 14
        tree.check_invariants()

    def test_duplicate_insert_rejected(self, rng):
        ds = _random_dataset(rng, n=10)
        tree = CoverTree(ds, point_ids=range(ds.n))
        with pytest.raises(ValueError, match="already stored"):
            tree.insert(0)

    def test_duplicate_point_rejected(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 0.0]])
        ds = Dataset(EuclideanMetric(), pts)
        tree = CoverTree(ds)
        tree.insert(0)
        tree.insert(1)
        with pytest.raises(ValueError, match="duplicates"):
            tree.insert(2)

    def test_works_on_tree_metric(self, rng):
        metric = TreeMetric(height=8)
        leaves = rng.choice(metric.num_leaves, size=50, replace=False).astype(np.int64)
        ds = Dataset(metric, leaves)
        tree = CoverTree(ds, point_ids=range(ds.n))
        tree.check_invariants()
        brute = BruteForceANN(ds, point_ids=range(ds.n))
        for q in rng.integers(0, metric.num_leaves, size=20):
            assert tree.nearest(int(q))[1] == brute.nearest(int(q))[1]

    def test_empty_and_single(self, rng):
        ds = _random_dataset(rng, n=5)
        tree = CoverTree(ds)
        assert tree.nearest(ds.points[0]) is None
        tree.insert(2)
        assert tree.nearest(ds.points[2]) == (2, 0.0)


class TestGridANN:
    def test_range_matches_bruteforce_l2(self, rng):
        ds = _random_dataset(rng, n=90)
        grid = GridANN(ds, cell_size=10.0, point_ids=range(ds.n))
        brute = BruteForceANN(ds, point_ids=range(ds.n))
        for radius in [3.0, 15.0, 60.0]:
            q = rng.uniform(0, 100, size=2)
            got = {i for i, _ in grid.range_search(q, radius)}
            want = {i for i, _ in brute.range_search(q, radius)}
            assert got == want

    def test_range_matches_bruteforce_linf(self, rng):
        pts = rng.uniform(0, 50, size=(60, 3))
        ds = Dataset(ChebyshevMetric(), pts)
        grid = GridANN(ds, cell_size=7.0, point_ids=range(ds.n))
        brute = BruteForceANN(ds, point_ids=range(ds.n))
        q = rng.uniform(0, 50, size=3)
        got = {i for i, _ in grid.range_search(q, 12.0)}
        want = {i for i, _ in brute.range_search(q, 12.0)}
        assert got == want

    def test_nearest_exact(self, rng):
        ds = _random_dataset(rng, n=70)
        grid = GridANN(ds, cell_size=5.0, point_ids=range(ds.n))
        for _ in range(25):
            q = rng.uniform(-50, 150, size=2)
            got = grid.nearest(q)
            want = ds.nearest_neighbor(q)
            assert got[1] == pytest.approx(want[1])

    def test_knn_exact(self, rng):
        ds = _random_dataset(rng, n=70)
        grid = GridANN(ds, cell_size=8.0, point_ids=range(ds.n))
        brute = BruteForceANN(ds, point_ids=range(ds.n))
        q = rng.uniform(0, 100, size=2)
        got = [round(d, 9) for _, d in grid.knn(q, 6)]
        want = [round(d, 9) for _, d in brute.knn(q, 6)]
        assert got == want

    def test_insert_delete(self, rng):
        ds = _random_dataset(rng, n=30)
        grid = GridANN(ds, cell_size=10.0, point_ids=range(ds.n))
        grid.delete(5)
        assert len(grid) == 29
        assert 5 not in {i for i, _ in grid.range_search(ds.points[5], 1e9)}
        grid.insert(5)
        assert grid.nearest(ds.points[5]) == (5, pytest.approx(0.0))

    def test_rejects_bad_cell_size(self, rng):
        ds = _random_dataset(rng, n=5)
        with pytest.raises(ValueError):
            GridANN(ds, cell_size=0.0)

    def test_requires_coordinates(self):
        metric = TreeMetric(height=4)
        ds = Dataset(metric, np.arange(16, dtype=np.int64))
        with pytest.raises(ValueError, match="coordinate"):
            GridANN(ds, cell_size=1.0)
