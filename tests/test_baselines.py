"""Tests for the baseline constructions: DiskANN (slow preprocessing),
HNSW, NSW, and the trivial anchors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    HNSWIndex,
    NSWIndex,
    alpha_for_epsilon,
    build_complete_graph,
    build_diskann_slow,
    build_knn_digraph,
)
from repro.graphs import find_violations, greedy
from tests.conftest import mixed_queries


class TestDiskANN:
    def test_alpha_mapping(self):
        # (alpha+1)/(alpha-1) = 1+eps at alpha = (2+eps)/eps.
        for eps in [1.0, 0.5, 0.25]:
            alpha = alpha_for_epsilon(eps)
            assert (alpha + 1) / (alpha - 1) == pytest.approx(1 + eps)

    def test_pruning_property(self, uniform2d):
        """For every point p and every non-neighbor v, some kept u has
        alpha * D(u, v) <= D(p, v) — the invariant the navigability proof
        consumes."""
        alpha = 2.0
        res = build_diskann_slow(uniform2d, alpha=alpha)
        n = uniform2d.n
        for p in range(0, n, 7):
            kept = res.graph.out_neighbors(p)
            kept_set = set(map(int, kept))
            row = uniform2d.distances_from_index_to_all(p)
            for v in range(n):
                if v == p or v in kept_set:
                    continue
                d_uv = uniform2d.distances_from_index(v, kept)
                assert (alpha * d_uv <= row[v] + 1e-9).any()

    def test_navigable_at_guaranteed_epsilon(self, uniform2d, rng):
        eps = 0.5
        res = build_diskann_slow(uniform2d, epsilon=eps)
        queries = mixed_queries(uniform2d, rng, m=30)
        assert find_violations(res.graph, uniform2d, queries, eps, stop_at=None) == []

    def test_guarantee_value(self, uniform2d):
        res = build_diskann_slow(uniform2d, alpha=3.0)
        assert res.guarantee == pytest.approx(2.0)

    def test_nearest_neighbor_always_kept(self, uniform2d):
        """The first scanned candidate is never pruned."""
        res = build_diskann_slow(uniform2d, alpha=2.0)
        for p in range(uniform2d.n):
            row = uniform2d.distances_from_index_to_all(p)
            row[p] = np.inf
            assert int(np.argmin(row)) in set(map(int, res.graph.out_neighbors(p)))

    def test_larger_alpha_more_edges(self, uniform2d):
        small = build_diskann_slow(uniform2d, alpha=1.5).graph.num_edges
        large = build_diskann_slow(uniform2d, alpha=4.0).graph.num_edges
        assert large >= small

    def test_max_degree_truncation(self, uniform2d):
        res = build_diskann_slow(uniform2d, alpha=4.0, max_degree=5)
        assert res.graph.max_out_degree() <= 5

    def test_parameter_validation(self, uniform2d):
        with pytest.raises(ValueError):
            build_diskann_slow(uniform2d)
        with pytest.raises(ValueError):
            build_diskann_slow(uniform2d, alpha=2.0, epsilon=0.5)
        with pytest.raises(ValueError):
            build_diskann_slow(uniform2d, alpha=1.0)


class TestHNSW:
    def test_search_recall_on_clustered_data(self, clustered2d, rng):
        index = HNSWIndex(clustered2d, rng, m=8, ef_construction=64)
        hits = 0
        for _ in range(30):
            q = rng.uniform(0, 30, size=2)
            got = index.search(q, k=1, ef=32)[0][0]
            want = clustered2d.nearest_neighbor(q)[0]
            hits += got == want
        assert hits >= 27  # >= 90% recall on an easy workload

    def test_search_k_sorted(self, uniform2d, rng):
        index = HNSWIndex(uniform2d, rng, m=6)
        out = index.search(rng.uniform(0, 30, size=2), k=5, ef=40)
        dists = [d for _, d in out]
        assert dists == sorted(dists)
        assert len(out) == 5

    def test_base_layer_graph_extraction(self, uniform2d, rng):
        index = HNSWIndex(uniform2d, rng, m=6)
        g = index.base_layer_graph()
        assert g.n == uniform2d.n
        assert g.num_edges > 0
        # level 0 contains every point
        assert all(len(g.out_neighbors(u)) > 0 for u in range(g.n))

    def test_level_distribution_geometric(self, uniform2d, rng):
        index = HNSWIndex(uniform2d, rng, m=4)
        levels = np.array([index._node_level[p] for p in range(uniform2d.n)])
        assert (levels == 0).mean() > 0.5  # most points at the bottom
        assert index.max_level >= 1

    def test_degree_cap_respected(self, uniform2d, rng):
        index = HNSWIndex(uniform2d, rng, m=5, ef_construction=40)
        g = index.base_layer_graph()
        assert g.max_out_degree() <= 2 * 5 + 1  # m_max0 with slack for the cap step

    def test_validation(self, uniform2d, rng):
        with pytest.raises(ValueError):
            HNSWIndex(uniform2d, rng, m=1)


class TestNSW:
    def test_search_quality(self, clustered2d, rng):
        index = NSWIndex(clustered2d, rng, m=6, ef_construction=32)
        hits = 0
        for _ in range(30):
            q = rng.uniform(0, 30, size=2)
            got = index.search(q, k=1, ef=32)[0][0]
            want = clustered2d.nearest_neighbor(q)[0]
            hits += got == want
        assert hits >= 24

    def test_graph_is_symmetric(self, uniform2d, rng):
        index = NSWIndex(uniform2d, rng, m=4)
        g = index.graph()
        for u in range(g.n):
            for v in g.out_neighbors(u):
                assert g.has_edge(int(v), u)

    def test_validation(self, uniform2d, rng):
        with pytest.raises(ValueError):
            NSWIndex(uniform2d, rng, m=0)


class TestTrivial:
    def test_complete_graph_edge_count(self, uniform2d):
        g = build_complete_graph(uniform2d)
        n = uniform2d.n
        assert g.num_edges == n * (n - 1)

    def test_complete_graph_navigable_tiny_epsilon(self, uniform2d, rng):
        g = build_complete_graph(uniform2d)
        queries = mixed_queries(uniform2d, rng, m=12)
        assert find_violations(g, uniform2d, queries, 1e-6, stop_at=None) == []

    def test_knn_digraph_edges(self, uniform2d):
        g = build_knn_digraph(uniform2d, k=7)
        assert g.num_edges == uniform2d.n * 7
        assert g.max_out_degree() == 7

    def test_knn_digraph_targets_are_nearest(self, uniform2d):
        g = build_knn_digraph(uniform2d, k=4)
        for p in [0, 11, 37]:
            row = uniform2d.distances_from_index_to_all(p)
            row[p] = np.inf
            want = set(np.argsort(row)[:4].tolist())
            assert set(map(int, g.out_neighbors(p))) == want

    def test_knn_k_capped(self, uniform2d):
        g = build_knn_digraph(uniform2d, k=uniform2d.n + 50)
        assert g.max_out_degree() == uniform2d.n - 1

    def test_greedy_on_complete_graph_exact(self, uniform2d, rng):
        g = build_complete_graph(uniform2d)
        q = rng.uniform(0, 30, size=2)
        result = greedy(g, uniform2d, p_start=0, q=q)
        assert result.point == uniform2d.nearest_neighbor(q)[0]
