"""Tests for the batched construction engine: the ``bulk_insert`` wave
driver, the vectorized construction beam, and the builders' batched
paths.

The contract under test (ISSUE 2): ``batch_size=1`` must be
*edge-identical* to the sequential inserter, and larger batches must
hold the recall floors of the regression suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import HNSWIndex, NSWIndex, VamanaIndex
from repro.baselines.diskann import build_diskann_slow
from repro.core import build, compute_ground_truth_k
from repro.graphs import (
    ProximityGraph,
    beam_search,
    beam_search_batch,
    bulk_insert,
    construction_beam_batch,
    snapshot_graph,
)
from repro.metrics import Dataset, EuclideanMetric
from repro.metrics.scaling import normalize_min_distance
from repro.workloads import gaussian_clusters, uniform_cube, uniform_queries


def _dataset(n=150, dim=2, seed=5):
    pts = uniform_cube(n, dim, np.random.default_rng(seed))
    ds, _ = normalize_min_distance(Dataset(EuclideanMetric(), pts))
    return ds


# ----------------------------------------------------------------------
# The wave driver
# ----------------------------------------------------------------------


class _RecordingInserter:
    """Stub WaveInserter that records the driver's schedule."""

    def __init__(self):
        self.calls: list[tuple[str, list[int]]] = []
        self.committed: list[int] = []

    def insert_one(self, pid):
        self.calls.append(("one", [pid]))
        self.committed.append(pid)

    def locate_wave(self, pids):
        self.calls.append(("locate", list(pids)))
        # The prefix visible to a wave must be exactly the committed set.
        return [sorted(self.committed) for _ in pids]

    def commit(self, pid, pool):
        assert pid not in pool, "a wave member saw itself in the prefix"
        assert pool == sorted(self.committed[: len(pool)])
        self.committed.append(pid)


class TestBulkInsertDriver:
    def test_batch_size_one_uses_insert_one(self):
        ins = _RecordingInserter()
        waves = bulk_insert(ins, range(5), batch_size=1)
        assert waves == 5
        assert all(kind == "one" for kind, _ in ins.calls)
        assert ins.committed == [0, 1, 2, 3, 4]

    def test_ramp_schedule(self):
        ins = _RecordingInserter()
        bulk_insert(ins, range(40), batch_size=16)
        sizes = [len(p) for _, p in ins.calls]
        # Waves double with the prefix: 1, 1, 2, 4, 8, 16, then capped.
        assert sizes == [1, 1, 2, 4, 8, 16, 8]
        assert ins.committed == list(range(40))

    def test_no_ramp_schedule(self):
        ins = _RecordingInserter()
        bulk_insert(ins, range(40), batch_size=16, ramp=False)
        sizes = [len(p) for _, p in ins.calls]
        assert sizes == [16, 16, 8]

    def test_prefix_visibility(self):
        # commit() itself asserts each wave located against the frozen
        # prefix (everything committed before the wave, nothing in it).
        ins = _RecordingInserter()
        bulk_insert(ins, range(30), batch_size=8)
        assert ins.committed == list(range(30))

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            bulk_insert(_RecordingInserter(), range(4), batch_size=0)

    def test_pool_count_mismatch_rejected(self):
        class Bad(_RecordingInserter):
            def locate_wave(self, pids):
                return [None]  # wrong arity

        with pytest.raises(ValueError, match="pools"):
            bulk_insert(Bad(), range(8), batch_size=4, ramp=False)


# ----------------------------------------------------------------------
# snapshot_graph
# ----------------------------------------------------------------------


class TestSnapshotGraph:
    def test_matches_container_for_clean_rows(self):
        rows = [[1, 2], [0], [], [0, 1, 2]]
        snap = snapshot_graph(4, rows)
        ref = ProximityGraph(4, [np.array(r, dtype=np.intp) for r in rows])
        assert snap.frozen
        assert snap == ref.freeze()

    def test_sorts_rows_by_default(self):
        snap = snapshot_graph(3, [[2, 1], [], [1, 0]])
        assert list(snap.out_neighbors(0)) == [1, 2]
        assert list(snap.out_neighbors(2)) == [0, 1]

    def test_accepts_sets_and_arrays(self):
        snap = snapshot_graph(3, [{2, 1}, np.array([0]), []])
        assert snap.num_edges == 3

    def test_row_count_validated(self):
        with pytest.raises(ValueError):
            snapshot_graph(3, [[1], [0]])


# ----------------------------------------------------------------------
# construction_beam_batch
# ----------------------------------------------------------------------


class TestConstructionBeam:
    def test_exact_on_complete_graph(self):
        """On the complete graph one expansion reveals every vertex, so
        the pool must equal the exact top-ef neighbors."""
        ds = _dataset(n=60)
        g = build("complete", ds, 1.0).graph
        rng = np.random.default_rng(3)
        queries = uniform_queries(10, np.asarray(ds.points), rng)
        starts = rng.integers(ds.n, size=10)
        ef = 8
        pools = construction_beam_batch(g, ds, starts, queries, beam_width=ef)
        gt_ids, _ = compute_ground_truth_k(ds, queries, k=ef)
        for (ids, dists), want in zip(pools, gt_ids):
            assert sorted(ids.tolist()) == sorted(want.tolist())
            assert list(dists) == sorted(dists)

    def test_matches_scalar_beam_pools(self):
        """On a navigable sparse graph the vectorized beam's pool should
        agree with the scalar beam's pool for the same width."""
        ds = _dataset(n=120)
        g = build("vamana", ds, 1.0, np.random.default_rng(0), max_degree=8).graph
        rng = np.random.default_rng(4)
        queries = uniform_queries(15, np.asarray(ds.points), rng)
        starts = rng.integers(ds.n, size=15)
        pools = construction_beam_batch(g, ds, starts, queries, beam_width=12)
        agree = 0
        for i, (ids, _d) in enumerate(pools):
            ref, _evals = beam_search(
                g, ds, int(starts[i]), queries[i], beam_width=12, k=12
            )
            agree += set(ids.tolist()) == {v for v, _ in ref}
        assert agree >= 13  # identical pools up to tie handling

    def test_multi_expansion_matches_single(self):
        ds = _dataset(n=120)
        g = build("vamana", ds, 1.0, np.random.default_rng(0), max_degree=8).graph
        rng = np.random.default_rng(4)
        queries = uniform_queries(10, np.asarray(ds.points), rng)
        starts = rng.integers(ds.n, size=10)
        a = construction_beam_batch(g, ds, starts, queries, 12, expand_per_round=1)
        b = construction_beam_batch(g, ds, starts, queries, 12, expand_per_round=4)
        same = sum(
            set(x[0].tolist()) == set(y[0].tolist()) for x, y in zip(a, b)
        )
        assert same >= 8  # speculative expansion may add, never lose, quality

    def test_validation(self):
        ds = _dataset(n=10)
        g = build("knn", ds, 1.0, k=3).graph
        with pytest.raises(ValueError):
            construction_beam_batch(g, ds, [0], [ds.points[0]], beam_width=0)
        with pytest.raises(ValueError):
            construction_beam_batch(g, ds, [0, 1], [ds.points[0]], beam_width=4)


# ----------------------------------------------------------------------
# batch_size=1 bit-identity (3 seeds each, per the issue)
# ----------------------------------------------------------------------


class TestBatchOneEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_hnsw(self, seed):
        ds = _dataset(seed=seed + 10)
        seq = HNSWIndex(ds, np.random.default_rng(seed), m=6)
        bat = HNSWIndex(ds, np.random.default_rng(seed), m=6, batch_size=1)
        assert seq._adj == bat._adj  # every level, every adjacency list
        assert seq.entry_point == bat.entry_point
        assert seq._node_level == bat._node_level

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_vamana(self, seed):
        ds = _dataset(seed=seed + 10)
        seq = VamanaIndex(ds, np.random.default_rng(seed), max_degree=8)
        bat = VamanaIndex(ds, np.random.default_rng(seed), max_degree=8, batch_size=1)
        assert seq._adj == bat._adj
        assert seq.graph() == bat.graph()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_nsw(self, seed):
        ds = _dataset(seed=seed + 10)
        seq = NSWIndex(ds, np.random.default_rng(seed), m=5)
        bat = NSWIndex(ds, np.random.default_rng(seed), m=5, batch_size=1)
        assert seq._adj == bat._adj
        assert seq._members == bat._members

    def test_registry_batch_size_one(self):
        ds = _dataset()
        for name in ("hnsw", "nsw", "vamana"):
            seq = build(name, ds, 1.0, np.random.default_rng(7))
            bat = build(name, ds, 1.0, np.random.default_rng(7), batch_size=1)
            assert seq.graph == bat.graph, name

    def test_diskann_batch_rows_equivalent(self):
        ds = _dataset(n=100)
        seq = build_diskann_slow(ds, alpha=2.0)
        bat = build_diskann_slow(ds, alpha=2.0, batch_size=32)
        # The wave path only changes which kernel computes the distance
        # rows; on generic (tie-free) inputs the edges are identical.
        assert seq.graph == bat.graph


# ----------------------------------------------------------------------
# Larger batches: structural invariants + recall floor
# ----------------------------------------------------------------------


class TestBatchedQuality:
    @pytest.fixture(scope="class")
    def workload(self):
        pts = gaussian_clusters(400, 2, np.random.default_rng(8), clusters=6)
        ds, _ = normalize_min_distance(Dataset(EuclideanMetric(), pts))
        rng = np.random.default_rng(9)
        queries = uniform_queries(100, pts, rng)
        starts = rng.integers(ds.n, size=len(queries))
        gt10, _ = compute_ground_truth_k(ds, queries, k=10)
        return ds, queries, starts, gt10

    def _recall10(self, graph, ds, queries, starts, gt10):
        found = beam_search_batch(graph, ds, starts, queries, beam_width=40, k=10)
        hits = sum(
            len({v for v, _ in pairs} & set(gt10[i].tolist()))
            for i, (pairs, _evals) in enumerate(found)
        )
        return hits / (len(queries) * 10)

    # Floors sit just under the measured batched recall (hnsw 0.999,
    # nsw 0.948, vamana 0.999 on this pinned workload).  Waves of 64 on
    # 400 points are deliberately aggressive (16% of the set per wave);
    # NSW pays the most because it has no second pass to repair stale
    # links, which is exactly the trade the batch_size docstring states.
    @pytest.mark.parametrize("name,opts,floor", [
        ("hnsw", {"m": 8}, 0.97),
        ("nsw", {"m": 8}, 0.92),
        ("vamana", {"max_degree": 12}, 0.97),
    ])
    def test_recall_floor_at_batch_64(self, workload, name, opts, floor):
        ds, queries, starts, gt10 = workload
        built = build(name, ds, 1.0, np.random.default_rng(3), batch_size=64, **opts)
        r = self._recall10(built.graph, ds, queries, starts, gt10)
        assert r >= floor, f"{name} batched recall@10 = {r:.3f}"

    def test_vamana_degree_cap_held(self, workload):
        ds = workload[0]
        built = build("vamana", ds, 1.0, np.random.default_rng(3),
                      max_degree=12, batch_size=64)
        assert built.graph.max_out_degree() <= 12

    def test_hnsw_degree_cap_held(self, workload):
        ds = workload[0]
        index = HNSWIndex(ds, np.random.default_rng(3), m=5, batch_size=64)
        g = index.base_layer_graph()
        assert g.max_out_degree() <= 2 * 5 + 1

    def test_nsw_symmetric(self, workload):
        ds = workload[0]
        index = NSWIndex(ds, np.random.default_rng(3), m=5, batch_size=64)
        g = index.graph()
        for u in range(0, g.n, 7):
            for v in g.out_neighbors(u):
                assert g.has_edge(int(v), u)

    def test_batch_size_rejected_for_non_insertion_builders(self):
        ds = _dataset()
        with pytest.raises(ValueError, match="batched construction"):
            build("gnet", ds, 1.0, batch_size=32)

    def test_batch_size_validated(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            VamanaIndex(ds, np.random.default_rng(0), batch_size=0)
        with pytest.raises(ValueError):
            NSWIndex(ds, np.random.default_rng(0), batch_size=-1)
        with pytest.raises(ValueError):
            HNSWIndex(ds, np.random.default_rng(0), batch_size=0)
