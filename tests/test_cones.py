"""Tests for Yao cone families (Section 5.1 substrate)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.graphs import ConeFamily, build_cone_family


def random_directions(rng, m, dim):
    v = rng.normal(size=(m, dim))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


class TestBuild2D:
    def test_cone_count_matches_theta(self):
        fam = build_cone_family(theta=0.5, dim=2)
        assert fam.num_cones == math.ceil(2 * math.pi / 0.5)
        assert fam.angular_diameter <= 0.5 + 1e-12

    def test_covers_all_directions(self, rng):
        fam = build_cone_family(theta=0.4, dim=2)
        assert fam.covers(random_directions(rng, 500, 2))

    def test_axes_unit(self):
        fam = build_cone_family(theta=0.3, dim=2)
        assert np.allclose(np.linalg.norm(fam.axes, axis=1), 1.0)

    def test_small_theta_many_cones(self):
        k1 = build_cone_family(0.5, 2).num_cones
        k2 = build_cone_family(0.05, 2).num_cones
        assert k2 > 5 * k1


class TestBuild1D:
    def test_two_halflines(self, rng):
        fam = build_cone_family(theta=0.2, dim=1)
        assert fam.num_cones == 2
        assert fam.covers(np.array([[1.0], [-1.0], [0.5], [-7.0]]))


class TestBuildND:
    @pytest.mark.parametrize("dim", [3, 4])
    def test_covers_random_directions(self, rng, dim):
        fam = build_cone_family(theta=0.8, dim=dim)
        assert fam.covers(random_directions(rng, 2000, dim))

    def test_angular_diameter_bound(self, rng):
        """Any two vectors in the same cone subtend angle <= theta."""
        theta = 0.8
        fam = build_cone_family(theta=theta, dim=3)
        dirs = random_directions(rng, 400, 3)
        member = fam.membership(dirs)
        for k in range(fam.num_cones):
            inside = dirs[member[:, k]]
            if len(inside) < 2:
                continue
            gram = np.clip(inside @ inside.T, -1.0, 1.0)
            angles = np.arccos(gram)
            assert angles.max() <= theta + 1e-9

    def test_cone_count_scales_inverse_theta(self):
        k_coarse = build_cone_family(1.2, 3).num_cones
        k_fine = build_cone_family(0.6, 3).num_cones
        assert k_fine > k_coarse

    def test_corner_certificate_refines(self):
        # Must not loop forever nor under-cover for an awkward theta.
        fam = build_cone_family(theta=0.33, dim=3)
        assert fam.num_cones > 0


class TestMembership:
    def test_axis_in_own_cone(self):
        fam = build_cone_family(theta=0.5, dim=2)
        member = fam.membership(fam.axes)
        assert np.all(np.diag(member))

    def test_zero_vector_everywhere(self):
        fam = build_cone_family(theta=0.5, dim=2)
        member = fam.membership(np.zeros((1, 2)))
        assert member.all()

    def test_projections_formula(self, rng):
        fam = build_cone_family(theta=0.7, dim=3)
        v = rng.normal(size=(5, 3))
        proj = fam.projections(v)
        assert np.allclose(proj, v @ fam.axes.T)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_cone_family(theta=0.0, dim=2)
        with pytest.raises(ValueError):
            build_cone_family(theta=4.0, dim=2)
        with pytest.raises(ValueError):
            build_cone_family(theta=0.5, dim=0)
        with pytest.raises(ValueError):
            ConeFamily(np.array([[2.0, 0.0]]), 0.3)  # non-unit axis
