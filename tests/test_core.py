"""Tests for the public API: the index facade, builder registry, and
measurement helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ProximityGraphIndex,
    available_builders,
    build,
    measure_queries,
    register_builder,
    timed,
)
from repro.baselines import build_complete_graph
from repro.metrics import Dataset, EuclideanMetric, TreeMetric
from repro.workloads import uniform_cube


class TestBuilderRegistry:
    def test_expected_builders_present(self):
        names = available_builders()
        for expected in ["gnet", "theta", "merged", "diskann", "hnsw", "nsw",
                         "knn", "complete"]:
            assert expected in names

    def test_unknown_builder_rejected(self, uniform2d, rng):
        with pytest.raises(ValueError, match="unknown builder"):
            build("does-not-exist", uniform2d, 0.5, rng)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_builder("gnet")
            def clash(**kwargs):  # pragma: no cover
                raise AssertionError

    def test_guaranteed_flags(self, uniform2d, rng):
        assert build("gnet", uniform2d, 1.0, rng).guaranteed
        assert build("complete", uniform2d, 1.0, rng).guaranteed
        assert not build("knn", uniform2d, 1.0, rng).guaranteed
        assert not build("hnsw", uniform2d, 1.0, rng).guaranteed

    def test_meta_contents(self, uniform2d, rng):
        g = build("gnet", uniform2d, 1.0, rng)
        assert "params" in g.meta and "hierarchy" in g.meta
        d = build("diskann", uniform2d, 1.0, rng)
        assert d.meta["alpha"] == pytest.approx(3.0)


class TestIndexFacade:
    def test_build_and_query_roundtrip(self, rng):
        pts = uniform_cube(150, 2, rng)
        index = ProximityGraphIndex.build(pts, epsilon=0.5, method="gnet", seed=3)
        ds = Dataset(EuclideanMetric(), pts)
        for _ in range(15):
            q = rng.uniform(size=2)
            pid, dist = index.query(q)
            nn_id, nn_dist = ds.nearest_neighbor(q)
            assert dist <= (1 + 0.5) * nn_dist + 1e-9
            # reported distance is in original units
            assert dist == pytest.approx(
                float(np.linalg.norm(pts[pid] - q)), rel=1e-9
            )

    def test_query_k_contains_exact_nn_with_wide_beam(self, rng):
        pts = uniform_cube(100, 2, rng)
        index = ProximityGraphIndex.build(pts, epsilon=1.0, method="gnet")
        ds = Dataset(EuclideanMetric(), pts)
        q = rng.uniform(size=2)
        got = [i for i, _ in index.query_k(q, k=5, beam_width=40)]
        assert ds.nearest_neighbor(q)[0] in got

    def test_stats_fields(self, rng):
        pts = uniform_cube(80, 2, rng)
        index = ProximityGraphIndex.build(pts, epsilon=1.0, method="gnet")
        s = index.stats()
        for key in ["n", "edges", "builder", "epsilon", "guaranteed", "h", "phi"]:
            assert key in s
        assert s["n"] == 80

    def test_validate_clean_on_guaranteed_builder(self, rng):
        pts = uniform_cube(80, 2, rng)
        index = ProximityGraphIndex.build(pts, epsilon=0.5, method="gnet")
        queries = [rng.uniform(size=2) for _ in range(20)]
        assert index.validate(queries, stop_at=None) == []

    def test_validate_finds_knn_failure(self, rng):
        a = rng.normal(0, 0.01, size=(15, 2))
        b = rng.normal(0, 0.01, size=(15, 2)) + 5.0
        pts = np.vstack([a, b])
        index = ProximityGraphIndex.build(pts, epsilon=0.5, method="knn", k=4)
        assert index.validate([pts[20] + 1e-4]) != []

    def test_seed_determinism(self, rng):
        pts = uniform_cube(60, 2, rng)
        a = ProximityGraphIndex.build(pts, method="merged", seed=9, theta=0.4)
        b = ProximityGraphIndex.build(pts, method="merged", seed=9, theta=0.4)
        assert a.graph == b.graph

    def test_custom_metric(self, rng):
        leaves = np.sort(rng.choice(256, size=40, replace=False)).astype(np.int64)
        index = ProximityGraphIndex.build(
            leaves, epsilon=1.0, method="gnet", metric=TreeMetric(8),
            normalize=False,
        )
        q = int(rng.integers(256))
        pid, dist = index.query(q)
        ds = Dataset(TreeMetric(8), leaves)
        assert dist <= 2 * ds.nearest_neighbor(q)[1] + 1e-9

    def test_normalize_false_keeps_scale(self, rng):
        pts = uniform_cube(50, 2, rng) * 100
        index = ProximityGraphIndex.build(pts, method="gnet", normalize=False)
        assert index.scale == 1.0

    def test_measure_returns_stats(self, rng):
        pts = uniform_cube(60, 2, rng)
        index = ProximityGraphIndex.build(pts, epsilon=1.0, method="gnet")
        stats = index.measure([rng.uniform(size=2) for _ in range(10)])
        assert stats.num_queries == 10
        assert stats.epsilon_satisfied_fraction == 1.0
        assert stats.mean_distance_evals > 0

    def test_budget_query(self, rng):
        pts = uniform_cube(60, 2, rng)
        index = ProximityGraphIndex.build(pts, epsilon=1.0, method="gnet")
        pid, dist = index.query(rng.uniform(size=2), budget=10)
        assert 0 <= pid < 60


class TestMeasureQueries:
    def test_complete_graph_perfect(self, uniform2d, rng):
        g = build_complete_graph(uniform2d)
        queries = [rng.uniform(0, 30, size=2) for _ in range(10)]
        stats = measure_queries(g, uniform2d, queries, epsilon=0.1)
        assert stats.recall_at_1 == 1.0
        assert stats.mean_approximation == pytest.approx(1.0)
        assert stats.max_hops <= uniform2d.n

    def test_budget_limits_evals(self, uniform2d, rng):
        g = build_complete_graph(uniform2d)
        queries = [rng.uniform(0, 30, size=2) for _ in range(5)]
        stats = measure_queries(g, uniform2d, queries, epsilon=0.1, budget=50)
        assert stats.max_distance_evals <= 50

    def test_per_query_records(self, uniform2d, rng):
        g = build_complete_graph(uniform2d)
        stats = measure_queries(
            g, uniform2d, [rng.uniform(size=2)], epsilon=1.0, keep_per_query=True
        )
        assert len(stats.per_query) == 1
        assert {"start", "evals", "hops", "ratio", "returned", "nn"} <= set(
            stats.per_query[0]
        )

    def test_explicit_starts(self, uniform2d, rng):
        g = build_complete_graph(uniform2d)
        queries = [rng.uniform(size=2) for _ in range(3)]
        stats = measure_queries(
            g, uniform2d, queries, epsilon=1.0, starts=[0, 1, 2],
            keep_per_query=True,
        )
        assert [r["start"] for r in stats.per_query] == [0, 1, 2]

    def test_table_row_shape(self, uniform2d, rng):
        g = build_complete_graph(uniform2d)
        stats = measure_queries(g, uniform2d, [rng.uniform(size=2)], epsilon=1.0)
        row = stats.table_row()
        assert "evals_mean" in row and "recall@1" in row

    def test_timed(self):
        out, seconds = timed(lambda: 41 + 1)
        assert out == 42
        assert seconds >= 0.0
