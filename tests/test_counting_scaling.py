"""Tests for distance accounting (CountingMetric) and normalization /
spread estimation (the Section 2.4 remark)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import (
    CountingMetric,
    Dataset,
    EuclideanMetric,
    SpreadEstimate,
    estimate_extremes,
    normalize_min_distance,
    spread_parameters,
)


class TestCountingMetric:
    def test_scalar_counts_one(self):
        m = CountingMetric(EuclideanMetric())
        m.distance(np.zeros(2), np.ones(2))
        assert m.count == 1

    def test_batch_counts_length(self, rng):
        m = CountingMetric(EuclideanMetric())
        m.distances(np.zeros(3), rng.normal(size=(17, 3)))
        assert m.count == 17

    def test_pairwise_counts_square(self, rng):
        m = CountingMetric(EuclideanMetric())
        m.pairwise(rng.normal(size=(5, 2)))
        assert m.count == 25

    def test_reset_returns_previous(self, rng):
        m = CountingMetric(EuclideanMetric())
        m.distances(np.zeros(2), rng.normal(size=(4, 2)))
        assert m.reset() == 4
        assert m.count == 0

    def test_values_pass_through(self, rng):
        pts = rng.normal(size=(6, 2))
        inner = EuclideanMetric()
        counting = CountingMetric(inner)
        assert np.allclose(
            counting.distances(pts[0], pts), inner.distances(pts[0], pts)
        )


class TestNormalization:
    def test_min_distance_becomes_two(self, rng):
        pts = rng.uniform(size=(40, 2))
        ds = Dataset(EuclideanMetric(), pts)
        scaled, factor = normalize_min_distance(ds)
        assert scaled.min_interpoint_distance() == pytest.approx(2.0)
        assert factor == pytest.approx(2.0 / ds.min_interpoint_distance())

    def test_aspect_ratio_preserved(self, rng):
        pts = rng.uniform(size=(25, 3))
        ds = Dataset(EuclideanMetric(), pts)
        scaled, _ = normalize_min_distance(ds)
        assert scaled.aspect_ratio() == pytest.approx(ds.aspect_ratio())

    def test_duplicates_rejected(self):
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="duplicate"):
            normalize_min_distance(Dataset(EuclideanMetric(), pts))

    def test_with_spread_estimate_lands_in_band(self, rng):
        pts = rng.uniform(size=(30, 2))
        ds = Dataset(EuclideanMetric(), pts)
        est = estimate_extremes(ds)
        scaled, _ = normalize_min_distance(ds, spread=est)
        got = scaled.min_interpoint_distance()
        assert 2.0 - 1e-9 <= got <= 4.0 + 1e-9


class TestSpreadEstimate:
    @given(
        arrays(
            np.float64,
            (12, 2),
            elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
            unique=True,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_remark_contracts(self, pts):
        """d_min_hat in [d_min/2, d_min], d_max_hat in [d_max, 2*d_max],
        hence aspect-ratio overestimate of factor at most 4 (footnote 1)."""
        ds = Dataset(EuclideanMetric(), pts)
        d_min, d_max = ds.min_interpoint_distance(), ds.diameter()
        if d_min <= 0:
            return  # duplicates after rounding; contract requires distinct
        est = estimate_extremes(ds)
        assert d_min / 2 - 1e-9 <= est.d_min_hat <= d_min + 1e-9
        assert d_max - 1e-9 <= est.d_max_hat <= 2 * d_max + 1e-9
        true_ar = d_max / d_min
        assert true_ar / (1 + 1e-9) <= est.aspect_ratio_hat <= 4 * true_ar * (1 + 1e-9)

    def test_custom_second_nearest_hook(self, rng):
        pts = rng.uniform(size=(15, 2))
        ds = Dataset(EuclideanMetric(), pts)
        calls = []

        def hook(i):
            calls.append(i)
            row = ds.distances_from_index_to_all(i)
            row[i] = np.inf
            return float(row.min())

        estimate_extremes(ds, second_nearest=hook)
        assert calls == list(range(15))

    def test_validation(self):
        with pytest.raises(ValueError):
            SpreadEstimate(0.0, 1.0)
        with pytest.raises(ValueError):
            SpreadEstimate(2.0, 1.0)


class TestSpreadParameters:
    def test_height_formula(self):
        h, delta = spread_parameters(diameter=100.0)
        assert h == 7  # ceil(log2 100)
        assert delta == 50.0

    def test_minimum_diameter(self):
        h, delta = spread_parameters(diameter=2.0)
        assert h == 1
        assert delta == 1.0

    def test_rejects_tiny_diameter(self):
        with pytest.raises(ValueError):
            spread_parameters(diameter=1.0)
