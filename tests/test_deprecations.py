"""Deprecation sweep — pinned warnings for every surviving shim.

One test per deprecated surface, so a future refactor can neither drop
a shim silently (the import/call would fail here) nor let it start
warning on every call (the once-per-process policy is pinned too):

* the four PR-3 legacy query methods on ``ProximityGraphIndex``;
* the PR-4 ``repro.baselines.vamana.robust_prune`` delegate (the
  function moved to ``repro.graphs.engine`` with the shared wave-repair
  plumbing).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.baselines.vamana as vamana_module
import repro.core.index as index_module
from repro import ProximityGraphIndex
from repro.graphs.engine import robust_prune as engine_robust_prune
from repro.workloads import uniform_cube


@pytest.fixture
def index() -> ProximityGraphIndex:
    pts = uniform_cube(60, 2, np.random.default_rng(3))
    return ProximityGraphIndex.build(pts, epsilon=1.0, method="gnet", seed=3)


@pytest.mark.parametrize(
    "name, call",
    [
        ("query", lambda idx, q: idx.query(q)),
        ("query_k", lambda idx, q: idx.query_k(q, k=2)),
        ("query_batch", lambda idx, q: idx.query_batch([q, q])),
        ("query_k_batch", lambda idx, q: idx.query_k_batch([q, q], k=2)),
    ],
)
def test_legacy_query_shim_warns_exactly_once(index, monkeypatch, name, call):
    monkeypatch.setattr(index_module, "_DEPRECATION_WARNED", set())
    q = np.array([0.5, 0.5])
    with warnings.catch_warnings(record=True) as first:
        warnings.simplefilter("always")
        call(index, q)
    deprecations = [
        w for w in first if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert name in str(deprecations[0].message)
    with warnings.catch_warnings(record=True) as second:
        warnings.simplefilter("always")
        call(index, q)
    assert [w for w in second if issubclass(w.category, DeprecationWarning)] == []


def test_vamana_robust_prune_delegate_warns_once_and_delegates(monkeypatch):
    monkeypatch.setattr(vamana_module, "_DELEGATE_WARNED", False)
    with warnings.catch_warnings(record=True) as first:
        warnings.simplefilter("always")
        fn = vamana_module.robust_prune
    assert fn is engine_robust_prune
    deprecations = [
        w for w in first if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "repro.graphs.engine" in str(deprecations[0].message)
    with warnings.catch_warnings(record=True) as second:
        warnings.simplefilter("always")
        assert vamana_module.robust_prune is engine_robust_prune
    assert [w for w in second if issubclass(w.category, DeprecationWarning)] == []


def test_vamana_module_still_exports_the_name():
    assert "robust_prune" in vamana_module.__all__


def test_unknown_vamana_attribute_raises():
    with pytest.raises(AttributeError, match="no attribute 'nope'"):
        vamana_module.nope
