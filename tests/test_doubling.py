"""Tests for the packing bound (Fact 2.3) and doubling estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    Dataset,
    EuclideanMetric,
    TreeMetric,
    check_packing,
    estimate_doubling_constant,
    greedy_half_radius_cover,
    packing_bound,
)
from repro.nets import greedy_rnet


class TestPackingBound:
    def test_formula(self):
        assert packing_bound(2.0, 1.0) == pytest.approx(16.0)
        assert packing_bound(2.0, 2.0) == pytest.approx(256.0)

    def test_rejects_aspect_below_one(self):
        with pytest.raises(ValueError):
            packing_bound(0.5, 1.0)

    def test_check_packing(self):
        assert check_packing(10, 2.0, 1.0)
        assert not check_packing(17, 2.0, 1.0)

    def test_fact_2_3_on_real_nets(self, uniform2d):
        """The Section 2.3 degree argument instantiated: points of a
        2^i-net within phi * 2^i of any center have aspect ratio <= 2*phi,
        so their count obeys (8 * 2 * phi)^lambda with lambda = 2."""
        phi = 9.0
        for i in [1, 2, 3]:
            net = greedy_rnet(uniform2d, float(2**i))
            for p in range(0, uniform2d.n, 11):
                d = uniform2d.distances_from_index(p, net)
                close = int((d <= phi * 2**i).sum())
                assert close <= packing_bound(2 * phi, 2.0)

    def test_fact_2_3_on_tree_metric(self, rng):
        """Doubling dimension 1: subsets of aspect ratio A have O(A) size."""
        metric = TreeMetric(height=10)
        ds = Dataset(metric, np.arange(0, 1024, 4, dtype=np.int64))
        for r in [8.0, 32.0, 128.0]:
            net = greedy_rnet(ds, r)
            for p in range(0, ds.n, 37):
                d = ds.distances_from_index(p, net)
                close = int((d <= 8 * r).sum())
                # aspect ratio <= 16, lambda = 1 -> at most 8 * 16 points
                assert close <= packing_bound(16.0, 1.0)


class TestGreedyCover:
    def test_cover_is_complete(self, uniform2d, rng):
        center = 5
        row = uniform2d.distances_from_index_to_all(center)
        radius = float(np.median(row))
        members = np.flatnonzero(row <= radius)
        centers = greedy_half_radius_cover(uniform2d, members, radius)
        # every member within radius/2 of some chosen center
        for m in members:
            d = uniform2d.distances_from_index(
                int(m), np.array(centers, dtype=np.intp)
            )
            assert d.min() <= radius / 2 + 1e-9

    def test_centers_come_from_members(self, uniform2d):
        row = uniform2d.distances_from_index_to_all(0)
        members = np.flatnonzero(row <= 20.0)
        centers = greedy_half_radius_cover(uniform2d, members, 20.0)
        assert set(centers) <= set(members.tolist())


class TestDoublingEstimator:
    def test_line_lower_than_plane(self, rng):
        line = np.zeros((100, 2))
        line[:, 0] = np.sort(rng.uniform(0, 100, size=100))
        plane = rng.uniform(0, 100, size=(100, 2))
        e_line = estimate_doubling_constant(
            Dataset(EuclideanMetric(), line), np.random.default_rng(0), trials=24
        )
        e_plane = estimate_doubling_constant(
            Dataset(EuclideanMetric(), plane), np.random.default_rng(0), trials=24
        )
        assert e_line <= e_plane

    def test_tree_metric_estimate_small(self, rng):
        metric = TreeMetric(height=9)
        ds = Dataset(metric, np.arange(0, 512, 2, dtype=np.int64))
        est = estimate_doubling_constant(ds, np.random.default_rng(3), trials=16)
        # true doubling dimension is 1; greedy covers can double it
        assert est <= 3.0

    def test_trials_validation(self, uniform2d):
        with pytest.raises(ValueError):
            estimate_doubling_constant(uniform2d, np.random.default_rng(0), trials=0)
