"""Tests for the incremental G_net extension (online insertions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import find_violations
from repro.graphs.dynamic import DynamicGNet
from repro.metrics import Dataset, EuclideanMetric
from repro.metrics.scaling import normalize_min_distance
from repro.workloads import uniform_cube


def _normalized_stream(rng, n=80, dim=2):
    """Coordinates pre-scaled to minimum inter-point distance 2.

    The dynamic index requires the *coordinates* to live in normalized
    units (its per-level grids equate coordinate radii with metric
    radii), so we scale the points rather than wrapping the metric.
    """
    pts = uniform_cube(n, dim, rng)
    _, factor = normalize_min_distance(Dataset(EuclideanMetric(), pts))
    return pts * factor


def _fresh_index(points, epsilon=1.0):
    diam = float(
        np.linalg.norm(points.max(axis=0) - points.min(axis=0)) * 2.0 + 4.0
    )
    return DynamicGNet(
        EuclideanMetric(),
        epsilon=epsilon,
        domain_diameter=diam,
        dim=points.shape[1],
    )


class TestInsertion:
    def test_ids_sequential(self, rng):
        pts = _normalized_stream(rng, 20)
        index = _fresh_index(pts)
        ids = index.insert_many(pts)
        assert ids == list(range(20))
        assert len(index) == 20

    def test_min_distance_enforced(self, rng):
        pts = _normalized_stream(rng, 10)
        index = _fresh_index(pts)
        index.insert_many(pts)
        with pytest.raises(ValueError, match="minimum inter-point"):
            index.insert(pts[0] + 1e-9)

    def test_wrong_shape_rejected(self, rng):
        pts = _normalized_stream(rng, 5)
        index = _fresh_index(pts)
        with pytest.raises(ValueError, match="expected"):
            index.insert(np.zeros(3))

    def test_capacity_growth(self, rng):
        pts = _normalized_stream(rng, 40)
        index = DynamicGNet(
            EuclideanMetric(), 1.0, domain_diameter=1000.0, dim=2, capacity=4
        )
        index.insert_many(pts)
        assert len(index) == 40
        assert np.allclose(index.coords, pts)


class TestInvariants:
    def test_nets_valid_after_stream(self, rng):
        pts = _normalized_stream(rng, 60)
        index = _fresh_index(pts)
        index.insert_many(pts)
        index.check_net_invariants()

    def test_nets_valid_mid_stream(self, rng):
        pts = _normalized_stream(rng, 50)
        index = _fresh_index(pts)
        for k, p in enumerate(pts):
            index.insert(p)
            if k in (9, 29, 49):
                index.check_net_invariants()

    def test_navigable_after_stream(self, rng):
        eps = 1.0
        pts = _normalized_stream(rng, 70)
        index = _fresh_index(pts, epsilon=eps)
        index.insert_many(pts)
        ds = index.dataset()
        graph = index.graph()
        queries = [rng.uniform(pts.min(), pts.max(), size=2) for _ in range(25)]
        queries += [pts[i] for i in range(0, 70, 9)]
        assert find_violations(graph, ds, queries, eps, stop_at=None) == []

    def test_navigable_at_every_prefix(self, rng):
        """The defining property of the dynamic index: the graph is a
        valid (1+eps)-PG after *each* insertion, not just at the end."""
        eps = 1.0
        pts = _normalized_stream(rng, 30)
        index = _fresh_index(pts, epsilon=eps)
        for k, p in enumerate(pts):
            index.insert(p)
            if k < 1:
                continue
            ds = index.dataset()
            graph = index.graph()
            queries = [rng.uniform(pts.min(), pts.max(), size=2) for _ in range(3)]
            assert find_violations(graph, ds, queries, eps, stop_at=None) == []

    def test_edge_rule_matches_static_definition(self, rng):
        """At the end of the stream the edge set must equal the static
        rule evaluated on the dynamic nets (order-dependent nets, same
        rule)."""
        pts = _normalized_stream(rng, 40)
        index = _fresh_index(pts)
        index.insert_many(pts)
        ds = index.dataset()
        want: list[set[int]] = [set() for _ in range(len(index))]
        for i in range(index.params.height + 1):
            members = index.level_members(i)
            radius = index.params.level_radius(i)
            if len(members) == 0:
                continue
            for p in range(len(index)):
                d = ds.distances_from_index(p, members)
                for y in members[d <= radius]:
                    if int(y) != p:
                        want[p].add(int(y))
        got = index.graph()
        for p in range(len(index)):
            assert set(map(int, got.out_neighbors(p))) == want[p]


class TestQueries:
    def test_query_quality(self, rng):
        eps = 1.0
        pts = _normalized_stream(rng, 60)
        index = _fresh_index(pts, epsilon=eps)
        index.insert_many(pts)
        ds = index.dataset()
        for _ in range(10):
            q = rng.uniform(pts.min(), pts.max(), size=2)
            _pid, dist = index.query(q, p_start=int(rng.integers(len(index))))
            nn = ds.distances_to_query_all(q).min()
            assert dist <= (1 + eps) * nn + 1e-9

    def test_query_empty_raises(self, rng):
        pts = _normalized_stream(rng, 5)
        index = _fresh_index(pts)
        with pytest.raises(ValueError, match="empty"):
            index.query(np.zeros(2))

    def test_interleaved_insert_query(self, rng):
        eps = 1.0
        pts = _normalized_stream(rng, 40)
        index = _fresh_index(pts, epsilon=eps)
        for k, p in enumerate(pts):
            index.insert(p)
            if k >= 5 and k % 7 == 0:
                ds = index.dataset()
                q = rng.uniform(pts.min(), pts.max(), size=2)
                _, dist = index.query(q)
                nn = ds.distances_to_query_all(q).min()
                assert dist <= (1 + eps) * nn + 1e-9


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DynamicGNet(EuclideanMetric(), 1.0, domain_diameter=1.0, dim=2)
        with pytest.raises(ValueError):
            DynamicGNet(
                EuclideanMetric(), 1.0, domain_diameter=10.0, dim=2,
                min_distance=0.0,
            )

    def test_domain_diameter_enforced(self, rng):
        """A point outside the declared domain would silently void the
        Lemma 2.2 guarantee (h too small) — it must be rejected instead."""
        index = DynamicGNet(EuclideanMetric(), 1.0, domain_diameter=100.0, dim=2)
        index.insert(np.array([0.0, 0.0]))
        index.insert(np.array([40.0, 0.0]))  # within radius 50 of the anchor
        with pytest.raises(ValueError, match="domain diameter"):
            index.insert(np.array([80.0, 0.0]))
        assert len(index) == 2
