"""Edge-path coverage: branches exercised nowhere else (grid fallback
scan, theory budgets driving real queries, CLI start pinning, top-level
re-exports)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.anns import BruteForceANN, GridANN
from repro.graphs import build_gnet, build_merged_graph, query
from repro.metrics import Dataset, EuclideanMetric
from repro.workloads import make_dataset, uniform_cube


class TestGridFallbackScan:
    def test_huge_radius_takes_occupied_cell_scan(self, rng):
        """A radius spanning vastly more cells than exist must flip to
        the occupied-cells scan and stay exact."""
        pts = rng.uniform(0, 10, size=(40, 2))
        ds = Dataset(EuclideanMetric(), pts)
        grid = GridANN(ds, cell_size=0.01, point_ids=range(ds.n))  # tiny cells
        brute = BruteForceANN(ds, point_ids=range(ds.n))
        q = np.array([5.0, 5.0])
        got = {i for i, _ in grid.range_search(q, 100.0)}
        want = {i for i, _ in brute.range_search(q, 100.0)}
        assert got == want == set(range(40))

    def test_far_query_nearest_terminates(self, rng):
        pts = rng.uniform(0, 1, size=(20, 2))
        ds = Dataset(EuclideanMetric(), pts)
        grid = GridANN(ds, cell_size=0.2, point_ids=range(ds.n))
        q = np.array([500.0, -300.0])
        got = grid.nearest(q)
        want = ds.nearest_neighbor(q)
        assert got[1] == pytest.approx(want[1])


class TestTheoryBudgetsDriveQueries:
    def test_gnet_query_budget_suffices(self, rng):
        """The explicit Section 2.3 budget, fed to the paper's budgeted
        query(), must always land on a (1+eps)-ANN."""
        eps = 0.5
        ds = make_dataset(uniform_cube(200, 2, rng))
        res = build_gnet(ds, epsilon=eps, method="grid")
        budget = res.params.query_budget(doubling_dimension=2.0)
        for _ in range(10):
            q = rng.uniform(-5, 40, size=2)
            nn = ds.distances_to_query_all(q).min()
            r = query(res.graph, ds, int(rng.integers(ds.n)), q, budget=budget)
            assert r.distance <= (1 + eps) * nn + 1e-9

    def test_merged_query_budget_suffices(self, rng):
        eps = 1.0
        ds = make_dataset(uniform_cube(150, 2, rng))
        merged = build_merged_graph(
            ds, eps, np.random.default_rng(3), theta=0.3
        )
        budget = merged.query_budget(doubling_dimension=2.0)
        for _ in range(8):
            q = rng.uniform(-5, 40, size=2)
            nn = ds.distances_to_query_all(q).min()
            r = query(merged.graph, ds, int(rng.integers(ds.n)), q, budget=budget)
            assert r.distance <= (1 + eps) * nn + 1e-9

    def test_hop_bound_value(self, rng):
        ds = make_dataset(uniform_cube(50, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        assert res.params.hop_bound() == res.params.height + 1


class TestCliStartPinning:
    def test_query_with_explicit_start(self, tmp_path, rng, capsys):
        from repro.cli import main

        pts = uniform_cube(50, 2, rng)
        pts_path = tmp_path / "p.npy"
        np.save(pts_path, pts)
        g_path = tmp_path / "g.npz"
        main(["build", str(pts_path), str(g_path), "--epsilon", "1.0"])
        capsys.readouterr()
        assert main(
            ["query", str(pts_path), str(g_path), "--q", "0.1", "0.9",
             "--start", "7"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["start"] == 7

    def test_validate_needs_epsilon_without_sidecar(self, tmp_path, rng):
        from repro.cli import main
        from repro.graphs import ProximityGraph

        pts = uniform_cube(20, 2, rng)
        pts_path = tmp_path / "p.npy"
        np.save(pts_path, pts)
        g_path = tmp_path / "bare.npz"
        ProximityGraph(20).save(g_path)  # no sidecar written
        with pytest.raises(SystemExit, match="epsilon"):
            main(["validate", str(pts_path), str(g_path)])


class TestTopLevelExports:
    def test_package_all_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_graphs_all_importable(self):
        import repro.graphs as g

        for name in g.__all__:
            assert getattr(g, name) is not None

    def test_metrics_all_importable(self):
        import repro.metrics as m

        for name in m.__all__:
            assert getattr(m, name) is not None
