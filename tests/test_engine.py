"""Scalar/batch engine equivalence and CSR persistence.

The batch engine's contract is *bit-identical* replay of the scalar
procedures: same returned vertex, same float distance, same hop
sequence, same distance-eval accounting, same termination flag — across
random graphs, budgets, metrics, and tie-heavy inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build, compute_ground_truth, measure_queries
from repro.graphs import (
    ProximityGraph,
    beam_search,
    beam_search_batch,
    greedy,
    greedy_batch,
)
from repro.metrics import (
    CountingMetric,
    Dataset,
    EuclideanMetric,
    ExplicitMatrixMetric,
)
from repro.workloads import uniform_cube, uniform_queries
from tests.conftest import mixed_queries


def random_graph(n: int, rng: np.random.Generator, mean_degree: float = 6.0):
    """A random digraph including isolated (empty-adjacency) vertices."""
    edges = [
        (int(rng.integers(n)), int(rng.integers(n)))
        for _ in range(int(n * mean_degree))
    ]
    return ProximityGraph.from_edge_list(n, edges)


def assert_results_equal(scalar, batch):
    assert len(scalar) == len(batch)
    for a, b in zip(scalar, batch):
        assert a.point == b.point
        assert a.distance == b.distance  # bitwise, no tolerance
        assert a.hops == b.hops
        assert a.distance_evals == b.distance_evals
        assert a.self_terminated == b.self_terminated


class TestGreedyEquivalence:
    @pytest.mark.parametrize("budget", [None, 1, 2, 5, 23, 1000])
    def test_random_graphs_euclidean(self, rng, budget):
        for trial in range(3):
            n = int(rng.integers(20, 120))
            points = uniform_cube(n, 2, rng)
            ds = Dataset(EuclideanMetric(), points)
            graph = random_graph(n, rng)
            queries = list(uniform_queries(25, points, rng))
            starts = rng.integers(n, size=len(queries))
            scalar = [
                greedy(graph, ds, int(s), q, budget=budget)
                for q, s in zip(queries, starts)
            ]
            batch = greedy_batch(graph, ds, starts, queries, budget=budget)
            assert_results_equal(scalar, batch)

    def test_built_graphs_normalized_metric(self, uniform2d, rng):
        """The index path: gnet on a ScaledMetric-wrapped dataset."""
        built = build("gnet", uniform2d, 1.0, rng)
        queries = mixed_queries(uniform2d, rng, m=24)
        starts = rng.integers(uniform2d.n, size=len(queries))
        for budget in [None, 7]:
            scalar = [
                greedy(built.graph, uniform2d, int(s), q, budget=budget)
                for q, s in zip(queries, starts)
            ]
            batch = greedy_batch(
                built.graph, uniform2d, starts, queries, budget=budget
            )
            assert_results_equal(scalar, batch)

    def test_tie_heavy_integer_grid(self, rng):
        """Integer grid points produce many exactly-equal distances; the
        smallest-id tie-break must match the scalar argmin."""
        side = 7
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        points = np.column_stack([xs.ravel(), ys.ravel()]).astype(np.float64)
        n = len(points)
        ds = Dataset(EuclideanMetric(), points)
        graph = random_graph(n, rng, mean_degree=8.0)
        # Queries on grid points and half-integer midpoints: max ties.
        queries = [points[i] for i in rng.integers(n, size=10)]
        queries += [points[i] + 0.5 for i in rng.integers(n, size=10)]
        starts = rng.integers(n, size=len(queries))
        scalar = [
            greedy(graph, ds, int(s), q) for q, s in zip(queries, starts)
        ]
        batch = greedy_batch(graph, ds, starts, queries)
        assert_results_equal(scalar, batch)

    def test_matrix_metric_id_queries(self, rng):
        """Abstract metric (ids as points) through the default
        distances_many fallback."""
        n = 40
        coords = uniform_cube(n, 3, rng)
        mat = EuclideanMetric().pairwise(coords)
        metric = ExplicitMatrixMetric(mat)
        ds = Dataset(metric, np.arange(n))
        graph = random_graph(n, rng)
        queries = [int(i) for i in rng.integers(n, size=20)]
        starts = rng.integers(n, size=len(queries))
        for budget in [None, 4]:
            scalar = [
                greedy(graph, ds, int(s), q, budget=budget)
                for q, s in zip(queries, starts)
            ]
            batch = greedy_batch(graph, ds, starts, queries, budget=budget)
            assert_results_equal(scalar, batch)

    def test_eval_accounting_matches_counting_metric(self, rng):
        """The engine's per-query eval counts sum to exactly the number
        of metric evaluations a CountingMetric observes."""
        n = 60
        points = uniform_cube(n, 2, rng)
        counting = CountingMetric(EuclideanMetric())
        ds = Dataset(counting, points)
        graph = random_graph(n, rng)
        queries = list(uniform_queries(15, points, rng))
        starts = rng.integers(n, size=len(queries))
        counting.reset()
        results = greedy_batch(graph, ds, starts, queries)
        assert counting.count == sum(r.distance_evals for r in results)

    def test_start_vertex_out_of_range(self, rng):
        points = uniform_cube(10, 2, rng)
        ds = Dataset(EuclideanMetric(), points)
        graph = random_graph(10, rng)
        with pytest.raises(ValueError):
            greedy_batch(graph, ds, [0, 10], list(points[:2]))

    def test_empty_batch(self, rng):
        points = uniform_cube(10, 2, rng)
        ds = Dataset(EuclideanMetric(), points)
        graph = random_graph(10, rng)
        assert greedy_batch(graph, ds, [], []) == []


class TestBeamEquivalence:
    @pytest.mark.parametrize("width,k,budget", [(1, 1, None), (4, 3, None), (8, 2, 37)])
    def test_beam_lockstep_matches_scalar(self, rng, width, k, budget):
        n = 80
        points = uniform_cube(n, 2, rng)
        ds = Dataset(EuclideanMetric(), points)
        graph = random_graph(n, rng)
        queries = list(uniform_queries(20, points, rng))
        starts = rng.integers(n, size=len(queries))
        scalar = [
            beam_search(graph, ds, int(s), q, beam_width=width, k=k, budget=budget)
            for q, s in zip(queries, starts)
        ]
        batch = beam_search_batch(
            graph, ds, starts, queries, beam_width=width, k=k, budget=budget
        )
        for (sf, se), (bf, be) in zip(scalar, batch):
            assert sf == bf
            assert se == be


class TestMeasureQueriesParity:
    def test_engines_and_ground_truth_agree(self, uniform2d, rng):
        built = build("gnet", uniform2d, 1.0, rng)
        queries = mixed_queries(uniform2d, rng, m=20)
        starts = rng.integers(uniform2d.n, size=len(queries))
        a = measure_queries(
            built.graph, uniform2d, queries, epsilon=1.0, starts=starts,
            engine="scalar",
        )
        b = measure_queries(
            built.graph, uniform2d, queries, epsilon=1.0, starts=starts,
            engine="batch",
        )
        assert a == b  # dataclass equality: every aggregate identical
        gt = compute_ground_truth(uniform2d, queries)
        c = measure_queries(
            built.graph, uniform2d, queries, epsilon=1.0, starts=starts,
            ground_truth=gt,
        )
        assert c.mean_distance_evals == b.mean_distance_evals
        assert c.recall_at_1 == pytest.approx(b.recall_at_1)
        assert c.epsilon_satisfied_fraction == pytest.approx(
            b.epsilon_satisfied_fraction
        )

    def test_unknown_engine_rejected(self, uniform2d, rng):
        built = build("gnet", uniform2d, 1.0, rng)
        with pytest.raises(ValueError):
            measure_queries(
                built.graph, uniform2d, [np.zeros(2)], epsilon=1.0, engine="turbo"
            )

    def test_ground_truth_matches_linear_scan(self, uniform2d, rng):
        # Includes exact data points as queries (true NN distance 0), the
        # worst case for the Gram-expansion fast path.
        queries = mixed_queries(uniform2d, rng, m=16)
        ids, dists = compute_ground_truth(uniform2d, queries)
        for q, i, d in zip(queries, ids, dists):
            nn_id, nn_dist = uniform2d.nearest_neighbor(q)
            assert int(i) == nn_id
            assert d == nn_dist  # bitwise: the band refine is exact


class TestIndexBatchAPI:
    def test_query_batch_matches_query(self, rng):
        from repro import ProximityGraphIndex

        points = np.random.default_rng(5).uniform(size=(150, 2))
        index = ProximityGraphIndex.build(points, epsilon=1.0, method="gnet")
        queries = rng.uniform(size=(12, 2))
        starts = rng.integers(index.n, size=len(queries))
        singles = [
            index.query(q, p_start=int(s)) for q, s in zip(queries, starts)
        ]
        batched = index.query_batch(list(queries), starts=starts)
        assert singles == batched

    def test_query_k_batch_matches_query_k(self, rng):
        from repro import ProximityGraphIndex

        points = np.random.default_rng(5).uniform(size=(150, 2))
        index = ProximityGraphIndex.build(points, epsilon=1.0, method="gnet")
        queries = rng.uniform(size=(8, 2))
        starts = rng.integers(index.n, size=len(queries))
        singles = [
            index.query_k(q, k=3, p_start=int(s)) for q, s in zip(queries, starts)
        ]
        batched = index.query_k_batch(list(queries), k=3, starts=starts)
        assert singles == batched


class TestCSRPersistence:
    def test_roundtrip_with_empty_rows(self, tmp_path, rng):
        n = 30
        g = ProximityGraph(n)
        # Leave vertices 0, 7, and n-1 isolated on purpose.
        for u in range(1, n - 1):
            if u == 7:
                continue
            g.add_edges(u, rng.integers(n, size=3))
        g.freeze()
        path = tmp_path / "csr.npz"
        g.save(path)
        loaded = ProximityGraph.load(path)
        assert loaded.frozen
        assert loaded == g
        assert len(loaded.out_neighbors(7)) == 0
        assert len(loaded.out_neighbors(n - 1)) == 0

    def test_roundtrip_fully_empty(self, tmp_path):
        g = ProximityGraph(5).freeze()
        path = tmp_path / "empty.npz"
        g.save(path)
        loaded = ProximityGraph.load(path)
        assert loaded.frozen and loaded == g and loaded.num_edges == 0

    def test_mutable_and_frozen_save_identically(self, tmp_path, rng):
        n = 25
        edges = [(int(rng.integers(n)), int(rng.integers(n))) for _ in range(80)]
        mutable = ProximityGraph.from_edge_list(n, edges)
        frozen = mutable.copy().freeze()
        p1, p2 = tmp_path / "a.npz", tmp_path / "b.npz"
        mutable.save(p1)
        frozen.save(p2)
        assert ProximityGraph.load(p1) == ProximityGraph.load(p2)
        assert not mutable.frozen  # save never flips physical state

    def test_legacy_unsorted_file_still_loads(self, tmp_path):
        # Hand-crafted npz with an unsorted row: load() falls back to the
        # cleaning constructor instead of rejecting the file.
        offsets = np.array([0, 2, 2, 2], dtype=np.int64)
        targets = np.array([2, 1], dtype=np.intp)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, n=np.int64(3), offsets=offsets, targets=targets)
        g = ProximityGraph.load(path)
        assert list(map(int, g.out_neighbors(0))) == [1, 2]
