"""Numerical verification of the Appendix E geometry (Facts E.1-E.3,
Lemma E.1) that underpins Lemma 5.1 — the paper's Figures 3-6 territory."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st


class TestFactE1:
    """tan(x) <= 2x for 0 <= x <= 1/2."""

    @given(st.floats(0.0, 0.5))
    @settings(max_examples=200, deadline=None)
    def test_holds(self, x):
        assert math.tan(x) <= 2 * x + 1e-12

    def test_fails_beyond_range(self):
        # The bound is genuinely about the stated range.
        assert math.tan(1.4) > 2 * 1.4


class TestFactE2:
    """For an isosceles triangle with apex angle gamma in (0, pi/2) and
    legs of length l: the base is < l * tan(gamma)."""

    @given(
        st.floats(0.01, math.pi / 2 - 0.01),
        st.floats(0.1, 100.0),
        st.integers(2, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_holds_in_rd(self, gamma, length, dim):
        rng = np.random.default_rng(int(gamma * 1e6) % 2**31)
        a = rng.normal(size=dim)
        # two unit directions at angle exactly gamma
        u = rng.normal(size=dim)
        u /= np.linalg.norm(u)
        w = rng.normal(size=dim)
        w -= (w @ u) * u
        w /= np.linalg.norm(w)
        v2 = math.cos(gamma) * u + math.sin(gamma) * w
        b = a + length * u
        c = a + length * v2
        base = np.linalg.norm(b - c)
        assert base < length * math.tan(gamma) + 1e-9

    def test_chord_formula(self):
        # 2 sin(g/2) < tan(g) is the inequality inside the proof.
        for g in np.linspace(0.01, math.pi / 2 - 0.01, 50):
            assert 2 * math.sin(g / 2) < math.tan(g) + 1e-12


class TestFactE3:
    """(2 + eps) * (2 tan(g) + 1 - cos(g)) < eps for 0 <= g <= eps/32."""

    @given(st.floats(0.001, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=300, deadline=None)
    def test_holds(self, eps, frac):
        g = frac * eps / 32.0
        lhs = (2 + eps) * (2 * math.tan(g) + 1 - math.cos(g))
        assert lhs < eps

    def test_tight_at_upper_end(self):
        # At g = eps/32 the inequality holds but not by orders of
        # magnitude — the 1/32 constant is doing real work.
        eps = 1.0
        g = eps / 32.0
        lhs = (2 + eps) * (2 * math.tan(g) + 1 - math.cos(g))
        assert lhs < eps
        g_too_big = eps / 2.0
        lhs_big = (2 + eps) * (2 * math.tan(g_too_big) + 1 - math.cos(g_too_big))
        assert lhs_big > eps


class TestLemmaE1:
    """Points x on the surface of B(q, r) and y on B(q, (1+eps)r) that are
    equidistant from p (with L2(p,q) = (1+eps)r) subtend an angle > eps/8
    at p."""

    @pytest.mark.parametrize("eps", [1.0, 0.5, 0.25])
    def test_sampled_configurations(self, eps, rng):
        r = 1.0
        q = np.zeros(2)
        failures = 0
        for _ in range(500):
            p_dir = rng.normal(size=2)
            p = q + (1 + eps) * r * p_dir / np.linalg.norm(p_dir)
            # x on inner sphere, y on outer sphere, equidistant from p:
            xd = rng.normal(size=2)
            x = q + r * xd / np.linalg.norm(xd)
            lpx = np.linalg.norm(p - x)
            # construct y at distance lpx from p on the outer sphere (if
            # the two circles intersect)
            y = _circle_intersection(p, lpx, q, (1 + eps) * r, rng)
            if y is None:
                continue
            vx, vy = x - p, y - p
            cosang = np.clip(
                vx @ vy / (np.linalg.norm(vx) * np.linalg.norm(vy)), -1, 1
            )
            angle = math.acos(cosang)
            if angle <= eps / 8:
                failures += 1
        assert failures == 0


def _circle_intersection(c1, r1, c2, r2, rng):
    """A point on both circles (c1, r1) and (c2, r2) in the plane, or None."""
    d = np.linalg.norm(c2 - c1)
    if d == 0 or d > r1 + r2 or d < abs(r1 - r2):
        return None
    a = (r1**2 - r2**2 + d**2) / (2 * d)
    h2 = r1**2 - a**2
    if h2 < 0:
        return None
    h = math.sqrt(h2)
    mid = c1 + a * (c2 - c1) / d
    perp = np.array([-(c2 - c1)[1], (c2 - c1)[0]]) / d
    return mid + (h if rng.random() < 0.5 else -h) * perp


class TestSection52Probability:
    """The jackpot-condition probability calculation of Section 5.2."""

    def test_sampling_miss_probability(self):
        """P(no jackpot in l = ceil(ln n * log Delta) samples at rate
        tau = z / log Delta) <= 1/n^z."""
        import math as m

        for n, log_delta, z in [(100, 8, 3.0), (1000, 16, 2.0)]:
            tau = z / log_delta
            l = m.ceil(m.log(n) * log_delta)
            miss = (1 - tau) ** l
            assert miss <= 1.0 / n**z * (1 + 1e-9)

    def test_empirical_jackpot_frequency(self, rng):
        """Simulate the sampling: long runs of tau-coin flips miss a head
        within the prescribed window only rarely."""
        n, log_delta, z = 200, 10, 3.0
        tau = z / log_delta
        window = math.ceil(math.log(n) * log_delta)
        misses = sum(
            1 for _ in range(2000) if not (rng.random(window) < tau).any()
        )
        assert misses <= 2  # expected ~ 2000/n^3, i.e. essentially zero
