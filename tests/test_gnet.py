"""Tests for the Theorem 1.1 construction (G_net)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.anns import BruteForceANN
from repro.graphs import build_gnet, find_violations, gnet_parameters, greedy
from repro.graphs.gnet import GNetParameters
from repro.metrics import Dataset, TreeMetric
from tests.conftest import mixed_queries


class TestParameters:
    def test_formulas(self):
        # eps = 1: eta = ceil(log2 3) = 2, phi = 1 + 2^3 = 9.
        p = gnet_parameters(1.0, diameter=100.0)
        assert p.eta == 2
        assert p.phi == 9.0
        assert p.height == 7

    def test_eta_grows_with_shrinking_epsilon(self):
        etas = [gnet_parameters(eps, 16.0).eta for eps in [1.0, 0.5, 0.25, 0.125]]
        assert etas == sorted(etas)
        # eps = 1/2: eta = ceil(log2 5) = 3, phi = 17.
        assert gnet_parameters(0.5, 16.0).phi == 17.0

    def test_phi_at_least_nine(self):
        # The paper notes eta >= 2 and 9 <= phi = Theta(1/eps).
        for eps in [1.0, 0.7, 0.3, 0.1, 0.01]:
            p = gnet_parameters(eps, 64.0)
            assert p.eta >= 2
            assert p.phi >= 9.0
            assert p.phi <= 1 + 8 * (1 + 2 / eps)  # Theta(1/eps) upper ballpark

    def test_validation(self):
        with pytest.raises(ValueError):
            gnet_parameters(0.0, 10.0)
        with pytest.raises(ValueError):
            gnet_parameters(2.0, 10.0)
        with pytest.raises(ValueError):
            gnet_parameters(0.5, 1.0)

    def test_level_radius(self):
        p = GNetParameters(epsilon=1.0, height=5, eta=2, phi=9.0)
        assert p.level_radius(0) == 9.0
        assert p.level_radius(3) == 72.0

    def test_query_budget_positive(self):
        p = gnet_parameters(0.5, 256.0)
        assert p.query_budget(doubling_dimension=2.0) > 0


class TestEdgeSetDefinition:
    def test_edges_match_definition(self, uniform2d):
        """Every edge (p, y) must be witnessed by some level i with
        y in Y_i and D(p, y) <= phi * 2^i, and conversely."""
        res = build_gnet(uniform2d, epsilon=1.0, method="vectorized")
        want: set[tuple[int, int]] = set()
        for i in range(res.params.height + 1):
            level = res.hierarchy.level(i)
            radius = res.params.level_radius(i)
            for p in range(uniform2d.n):
                d = uniform2d.distances_from_index(p, level)
                for y in level[d <= radius]:
                    if int(y) != p:
                        want.add((p, int(y)))
        got = set(res.graph.edges())
        assert got == want

    def test_methods_agree_vectorized_grid(self, uniform2d):
        a = build_gnet(uniform2d, epsilon=1.0, method="vectorized")
        b = build_gnet(uniform2d, epsilon=1.0, method="grid")
        assert a.graph == b.graph

    def test_methods_agree_vectorized_paper_cover_tree(self, clustered2d):
        a = build_gnet(clustered2d, epsilon=1.0, method="vectorized")
        b = build_gnet(clustered2d, epsilon=1.0, method="paper")
        assert a.graph == b.graph

    def test_methods_agree_paper_bruteforce(self, clustered2d):
        a = build_gnet(clustered2d, epsilon=1.0, method="vectorized")
        b = build_gnet(
            clustered2d,
            epsilon=1.0,
            method="paper",
            ann_factory=lambda ds, ids: BruteForceANN(ds, point_ids=ids),
        )
        assert a.graph == b.graph

    def test_auto_dispatch(self, uniform2d):
        res = build_gnet(uniform2d, epsilon=1.0, method="auto")
        ref = build_gnet(uniform2d, epsilon=1.0, method="vectorized")
        assert res.graph == ref.graph

    def test_unknown_method(self, uniform2d):
        with pytest.raises(ValueError, match="unknown build method"):
            build_gnet(uniform2d, epsilon=1.0, method="nope")


class TestProposition21:
    def test_min_out_degree_at_least_one(self, uniform2d, clustered2d):
        for ds in (uniform2d, clustered2d):
            res = build_gnet(ds, epsilon=0.5)
            assert res.graph.min_out_degree() >= 1

    def test_no_self_loops(self, uniform2d):
        res = build_gnet(uniform2d, epsilon=1.0)
        for u in range(uniform2d.n):
            assert u not in set(map(int, res.graph.out_neighbors(u)))


class TestNavigability:
    @pytest.mark.parametrize("epsilon", [1.0, 0.5, 0.25])
    def test_no_violations_on_mixed_queries(self, uniform2d, rng, epsilon):
        res = build_gnet(uniform2d, epsilon=epsilon)
        queries = mixed_queries(uniform2d, rng, m=40)
        assert find_violations(
            res.graph, uniform2d, queries, epsilon, stop_at=None
        ) == []

    def test_no_violations_clustered(self, clustered2d, rng):
        res = build_gnet(clustered2d, epsilon=0.5)
        queries = mixed_queries(clustered2d, rng, m=40)
        assert find_violations(
            res.graph, clustered2d, queries, 0.5, stop_at=None
        ) == []

    def test_no_violations_3d(self, uniform3d, rng):
        res = build_gnet(uniform3d, epsilon=1.0)
        queries = [rng.uniform(-5, 30, size=3) for _ in range(25)]
        assert find_violations(
            res.graph, uniform3d, queries, 1.0, stop_at=None
        ) == []

    def test_on_tree_metric(self, rng):
        metric = TreeMetric(height=9)
        leaves = np.sort(rng.choice(metric.num_leaves, size=60, replace=False))
        ds = Dataset(metric, leaves.astype(np.int64))
        res = build_gnet(ds, epsilon=1.0, method="vectorized")
        queries = rng.integers(0, metric.num_leaves, size=60).tolist()
        assert find_violations(res.graph, ds, queries, 1.0, stop_at=None) == []


class TestQueryTimeTheory:
    def test_greedy_hits_ann_within_h_hops(self, uniform2d, rng):
        """Lemma 2.2's log-drop: within h non-ANN hops greedy reaches a
        (1+eps)-ANN (then keeps improving)."""
        eps = 0.5
        res = build_gnet(uniform2d, epsilon=eps)
        h = res.params.height
        for _ in range(20):
            q = rng.uniform(-5, 30, size=2)
            nn_dist = uniform2d.distances_to_query_all(q).min()
            start = int(rng.integers(uniform2d.n))
            result = greedy(res.graph, uniform2d, start, q)
            ann_positions = [
                k
                for k, p in enumerate(result.hops)
                if uniform2d.distance_to_query(q, p) <= (1 + eps) * nn_dist + 1e-12
            ]
            assert ann_positions, "greedy never reached a (1+eps)-ANN"
            assert ann_positions[0] <= h + 1

    def test_log_drop_property_along_trace(self, uniform2d, rng):
        """Inequality (12): between consecutive non-ANN hop vertices the
        value ceil(log2 D(p, p*)) strictly decreases."""
        eps = 0.5
        res = build_gnet(uniform2d, epsilon=eps)
        for _ in range(15):
            q = rng.uniform(-5, 30, size=2)
            dists = uniform2d.distances_to_query_all(q)
            p_star = int(np.argmin(dists))
            nn_dist = float(dists[p_star])
            start = int(rng.integers(uniform2d.n))
            trace = greedy(res.graph, uniform2d, start, q).hops
            logs = []
            for p in trace:
                if uniform2d.distance_to_query(q, p) > (1 + eps) * nn_dist + 1e-12:
                    d = uniform2d.distance(p, p_star)
                    logs.append(math.ceil(math.log2(d)) if d > 0 else -math.inf)
            assert all(a > b for a, b in zip(logs, logs[1:]))

    def test_max_degree_within_packing_bound(self, uniform2d):
        """Fact 2.3 degree analysis: out-degree <= (h+1) * (16 phi)^lambda
        with lambda ~ 2 for planar data (loose, but must hold)."""
        res = build_gnet(uniform2d, epsilon=1.0)
        bound = res.params.out_degree_bound(doubling_dimension=2.0)
        assert res.graph.max_out_degree() <= bound


class TestDiameterEstimates:
    def test_explicit_diameter_accepted(self, uniform2d):
        exact = uniform2d.diameter()
        res = build_gnet(uniform2d, epsilon=1.0, diameter=exact)
        assert res.params.height == math.ceil(math.log2(exact))

    def test_default_estimate_at_least_true_height(self, uniform2d):
        res = build_gnet(uniform2d, epsilon=1.0)
        assert res.params.height >= math.ceil(math.log2(uniform2d.diameter()))

    def test_level_bookkeeping(self, uniform2d):
        res = build_gnet(uniform2d, epsilon=1.0)
        assert len(res.level_sizes) == res.params.height + 1
        assert len(res.level_edge_counts) == res.params.height + 1
        assert sum(res.level_edge_counts) == res.graph.num_edges
        assert res.level_sizes[0] == uniform2d.n
        assert res.level_sizes[-1] >= 1
