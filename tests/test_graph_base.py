"""Tests for the ProximityGraph container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import ProximityGraph


class TestConstruction:
    def test_empty(self):
        g = ProximityGraph(5)
        assert g.num_edges == 0
        assert all(len(g.out_neighbors(u)) == 0 for u in range(5))

    def test_self_loops_dropped(self):
        g = ProximityGraph(3, [np.array([0, 1]), np.array([1]), np.array([2, 0])])
        assert not g.has_edge(0, 0)
        assert not g.has_edge(1, 1)
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 0)
        assert g.num_edges == 2

    def test_parallel_edges_collapsed(self):
        g = ProximityGraph.from_edge_list(3, [(0, 1), (0, 1), (0, 2)])
        assert g.num_edges == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ProximityGraph(2, [np.array([5]), np.array([])])

    def test_from_sets(self):
        g = ProximityGraph.from_sets(3, [{1, 2}, {0}, set()])
        assert g.num_edges == 3
        assert set(map(int, g.out_neighbors(0))) == {1, 2}


class TestMutation:
    def test_add_edges_dedups(self):
        g = ProximityGraph(4)
        g.add_edges(0, [1, 2])
        g.add_edges(0, [2, 3, 0])
        assert set(map(int, g.out_neighbors(0))) == {1, 2, 3}

    def test_set_out_neighbors(self):
        g = ProximityGraph(3)
        g.set_out_neighbors(1, [0, 2])
        g.set_out_neighbors(1, [2])
        assert list(g.out_neighbors(1)) == [2]


class TestStats:
    def test_degrees(self):
        g = ProximityGraph.from_edge_list(4, [(0, 1), (0, 2), (1, 3)])
        assert g.max_out_degree() == 2
        assert g.min_out_degree() == 0
        assert g.mean_out_degree() == pytest.approx(0.75)

    def test_degree_histogram(self):
        g = ProximityGraph.from_edge_list(4, [(0, 1), (0, 2), (1, 3)])
        assert g.degree_histogram() == {0: 2, 1: 1, 2: 1}

    def test_summary(self):
        g = ProximityGraph.from_edge_list(3, [(0, 1)])
        s = g.summary()
        assert s["n"] == 3 and s["edges"] == 1


class TestCombinators:
    def test_merge_unions_out_edges(self):
        a = ProximityGraph.from_edge_list(3, [(0, 1)])
        b = ProximityGraph.from_edge_list(3, [(0, 2), (1, 0)])
        m = a.merge(b)
        assert set(map(int, m.out_neighbors(0))) == {1, 2}
        assert m.has_edge(1, 0)
        assert a.num_edges == 1  # originals untouched

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            ProximityGraph(2).merge(ProximityGraph(3))

    def test_subgraph_of_sources(self):
        g = ProximityGraph.from_edge_list(3, [(0, 1), (1, 2), (2, 0)])
        sub = g.subgraph_of_sources(np.array([1]))
        assert sub.num_edges == 1
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(0, 1)
        assert sub.n == 3  # vertices retained (Section 5: only edges drop)

    def test_copy_independent(self):
        g = ProximityGraph.from_edge_list(2, [(0, 1)])
        c = g.copy()
        c.set_out_neighbors(0, [])
        assert g.has_edge(0, 1)

    def test_equality(self):
        a = ProximityGraph.from_edge_list(3, [(0, 1), (2, 1)])
        b = ProximityGraph.from_edge_list(3, [(2, 1), (0, 1)])
        assert a == b
        b.add_edges(1, [0])
        assert a != b


class TestFreezeThaw:
    def test_freeze_is_idempotent_and_preserves_adjacency(self):
        g = ProximityGraph.from_edge_list(4, [(0, 1), (0, 2), (2, 3)])
        rows = [list(map(int, g.out_neighbors(u))) for u in range(4)]
        assert not g.frozen
        assert g.freeze() is g and g.frozen
        g.freeze()  # no-op
        assert [list(map(int, g.out_neighbors(u))) for u in range(4)] == rows
        assert g.num_edges == 3

    def test_csr_layout(self):
        g = ProximityGraph.from_edge_list(4, [(0, 2), (0, 1), (2, 3)])
        offsets, targets = g.csr()
        assert g.frozen  # csr() freezes in place
        assert offsets.tolist() == [0, 2, 2, 3, 3]
        assert targets.tolist() == [1, 2, 3]

    def test_mutation_thaws_transparently(self):
        g = ProximityGraph.from_edge_list(3, [(0, 1)]).freeze()
        g.add_edges(0, [2])
        assert not g.frozen
        assert set(map(int, g.out_neighbors(0))) == {1, 2}
        g.freeze()
        g.set_out_neighbors(0, [2])
        assert list(map(int, g.out_neighbors(0))) == [2]

    def test_frozen_queries_and_stats(self):
        g = ProximityGraph.from_edge_list(4, [(0, 1), (0, 2), (1, 3)]).freeze()
        assert g.has_edge(0, 2) and not g.has_edge(0, 3)
        assert g.out_degrees().tolist() == [2, 1, 0, 0]
        assert g.degree_histogram() == {0: 2, 1: 1, 2: 1}
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 3)]

    def test_copy_preserves_state(self):
        g = ProximityGraph.from_edge_list(3, [(0, 1)])
        assert not g.copy().frozen
        f = g.freeze().copy()
        assert f.frozen and f == g
        f.add_edges(1, [2])  # thaws the copy only
        assert g.frozen and not g.has_edge(1, 2)

    def test_equality_across_states(self):
        a = ProximityGraph.from_edge_list(3, [(0, 1), (2, 0)])
        b = a.copy().freeze()
        assert a == b and b == a

    def test_merge_accepts_frozen_inputs(self):
        a = ProximityGraph.from_edge_list(3, [(0, 1)]).freeze()
        b = ProximityGraph.from_edge_list(3, [(0, 2), (1, 0)]).freeze()
        m = a.merge(b)
        assert set(map(int, m.out_neighbors(0))) == {1, 2}
        assert a.frozen and b.frozen  # inputs untouched

    def test_from_csr_validates(self):
        with pytest.raises(ValueError):
            ProximityGraph.from_csr(
                2, np.array([0, 1, 1]), np.array([5])
            )  # id out of range
        with pytest.raises(ValueError):
            ProximityGraph.from_csr(
                2, np.array([0, 1, 1]), np.array([0])
            )  # self-loop


class TestPersistence:
    def test_roundtrip(self, tmp_path, rng):
        n = 20
        edges = [(int(rng.integers(n)), int(rng.integers(n))) for _ in range(100)]
        g = ProximityGraph.from_edge_list(n, edges)
        path = tmp_path / "graph.npz"
        g.save(path)
        assert ProximityGraph.load(path) == g

    def test_roundtrip_empty(self, tmp_path):
        g = ProximityGraph(4)
        path = tmp_path / "empty.npz"
        g.save(path)
        assert ProximityGraph.load(path) == g

    def test_edges_iterator(self):
        g = ProximityGraph.from_edge_list(3, [(0, 2), (1, 0)])
        assert sorted(g.edges()) == [(0, 2), (1, 0)]
