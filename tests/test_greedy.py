"""Tests for the greedy routing procedure (Section 1.1 pseudocode)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import build_complete_graph
from repro.graphs import ProximityGraph, beam_search, greedy, query
from repro.metrics import CountingMetric, Dataset, EuclideanMetric


@pytest.fixture
def line_dataset():
    """Points 0, 2, 4, ..., 18 on a line."""
    pts = np.arange(10, dtype=np.float64)[:, None] * 2.0
    return Dataset(EuclideanMetric(), np.hstack([pts, np.zeros((10, 1))]))


@pytest.fixture
def path_graph():
    """Bidirectional path 0 - 1 - ... - 9."""
    edges = [(i, i + 1) for i in range(9)] + [(i + 1, i) for i in range(9)]
    return ProximityGraph.from_edge_list(10, edges)


class TestGreedy:
    def test_walks_path_to_nn(self, line_dataset, path_graph):
        q = np.array([17.9, 0.0])  # NN is point 9 (x=18)
        result = greedy(path_graph, line_dataset, p_start=0, q=q)
        assert result.point == 9
        assert result.self_terminated
        assert result.hops == list(range(10))

    def test_descent_is_strict(self, line_dataset, path_graph, rng):
        q = rng.uniform(0, 18, size=2) * np.array([1.0, 0.0])
        result = greedy(path_graph, line_dataset, p_start=0, q=q)
        dists = [line_dataset.distance_to_query(q, p) for p in result.hops]
        assert all(a > b for a, b in zip(dists, dists[1:]))

    def test_stops_at_local_minimum(self, line_dataset):
        # Graph with no useful edges: start is returned immediately.
        g = ProximityGraph(10)
        result = greedy(g, line_dataset, p_start=4, q=np.array([18.0, 0.0]))
        assert result.point == 4
        assert result.self_terminated
        assert result.distance_evals == 1

    def test_start_already_nn(self, line_dataset, path_graph):
        q = np.array([8.1, 0.0])
        result = greedy(path_graph, line_dataset, p_start=4, q=q)
        assert result.point == 4

    def test_distance_accounting_matches_counting_metric(self, rng):
        pts = rng.uniform(size=(30, 2))
        counting = CountingMetric(EuclideanMetric())
        ds = Dataset(counting, pts)
        g = build_complete_graph(ds)
        counting.reset()
        result = greedy(g, ds, p_start=0, q=rng.uniform(size=2))
        assert result.distance_evals == counting.count

    def test_invalid_start_rejected(self, line_dataset, path_graph):
        with pytest.raises(ValueError):
            greedy(path_graph, line_dataset, p_start=99, q=np.zeros(2))

    def test_tie_break_smallest_id(self):
        # Both out-neighbors strictly improve and are equidistant from q:
        # the smaller id must win (deterministic argmin).
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [1.0, -1.0], [2.0, 0.0]])
        ds = Dataset(EuclideanMetric(), pts)
        g = ProximityGraph.from_edge_list(4, [(0, 2), (0, 1), (1, 3), (2, 3)])
        result = greedy(g, ds, p_start=0, q=np.array([2.0, 0.0]))
        assert result.hops[1] == 1

    def test_equal_distance_neighbor_does_not_move(self):
        # Descent is strict: an equally-close neighbor terminates greedy.
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        ds = Dataset(EuclideanMetric(), pts)
        g = ProximityGraph.from_edge_list(2, [(0, 1), (1, 0)])
        result = greedy(g, ds, p_start=0, q=np.array([1.0, 0.0]))
        assert result.point == 0
        assert result.hops == [0]


class TestBudgetedQuery:
    def test_budget_stops_early(self, line_dataset, path_graph):
        q = np.array([18.0, 0.0])
        result = query(path_graph, line_dataset, p_start=0, q=q, budget=5)
        assert not result.self_terminated
        assert result.distance_evals <= 5
        assert result.point < 9  # did not reach the NN

    def test_budget_large_enough_self_terminates(self, line_dataset, path_graph):
        q = np.array([18.0, 0.0])
        result = query(path_graph, line_dataset, p_start=0, q=q, budget=1000)
        assert result.self_terminated
        assert result.point == 9

    def test_returns_last_hop_vertex(self, line_dataset, path_graph):
        q = np.array([18.0, 0.0])
        result = query(path_graph, line_dataset, p_start=0, q=q, budget=7)
        assert result.point == result.hops[-1]

    def test_budget_validation(self, line_dataset, path_graph):
        with pytest.raises(ValueError):
            query(path_graph, line_dataset, 0, np.zeros(2), budget=0)

    def test_monotone_in_budget(self, line_dataset, path_graph):
        """More budget never yields a farther answer (hops only descend)."""
        q = np.array([18.0, 0.0])
        dists = []
        for budget in [2, 4, 8, 16, 32]:
            r = query(path_graph, line_dataset, 0, q, budget=budget)
            dists.append(r.distance)
        assert all(a >= b for a, b in zip(dists, dists[1:]))


class TestBeamSearch:
    def test_finds_exact_on_complete_graph(self, rng):
        pts = rng.uniform(size=(40, 2))
        ds = Dataset(EuclideanMetric(), pts)
        g = build_complete_graph(ds)
        q = rng.uniform(size=2)
        found, _ = beam_search(g, ds, p_start=0, q=q, beam_width=5, k=3)
        want = np.argsort(np.linalg.norm(pts - q, axis=1))[:3]
        assert [i for i, _ in found] == list(want)

    def test_wider_beam_not_worse(self, line_dataset, path_graph, rng):
        q = np.array([13.0, 0.0])
        d_narrow = beam_search(path_graph, line_dataset, 0, q, beam_width=1)[0][0][1]
        d_wide = beam_search(path_graph, line_dataset, 0, q, beam_width=8)[0][0][1]
        assert d_wide <= d_narrow + 1e-12

    def test_k_results_sorted(self, rng):
        pts = rng.uniform(size=(25, 2))
        ds = Dataset(EuclideanMetric(), pts)
        g = build_complete_graph(ds)
        found, _ = beam_search(g, ds, 0, rng.uniform(size=2), beam_width=10, k=5)
        ds_list = [d for _, d in found]
        assert ds_list == sorted(ds_list)

    def test_validation(self, line_dataset, path_graph):
        with pytest.raises(ValueError):
            beam_search(path_graph, line_dataset, 0, np.zeros(2), beam_width=0)
