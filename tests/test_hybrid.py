"""Tests for the open-question probe structure (repro.graphs.hybrid)."""

from __future__ import annotations

import numpy as np

from repro.graphs import build_gnet
from repro.graphs.hybrid import build_hybrid_candidate, probe_open_question
from repro.workloads import make_dataset, uniform_cube, uniform_queries


class TestStructure:
    def test_edge_split_accounting(self, rng):
        ds = make_dataset(uniform_cube(100, 2, rng))
        res = build_hybrid_candidate(ds, epsilon=1.0)
        assert res.spine_edges + res.lateral_edges >= res.graph.num_edges
        assert res.graph.num_edges > 0

    def test_spine_is_log_delta_per_point(self, rng):
        """Spine edges are at most 2 per (point, level-above-own) pair."""
        ds = make_dataset(uniform_cube(100, 2, rng))
        res = build_hybrid_candidate(ds, epsilon=1.0)
        h = res.params.height
        assert res.spine_edges <= 2 * ds.n * (h + 1)

    def test_laterals_bounded_by_own_level_packing(self, rng):
        """Each point's laterals live in one net level within phi*2^l: the
        packing bound applies per point."""
        from repro.metrics import packing_bound

        ds = make_dataset(uniform_cube(120, 2, rng))
        res = build_hybrid_candidate(ds, epsilon=1.0)
        bound = packing_bound(2 * res.params.phi, 2.0)
        assert res.lateral_edges <= ds.n * bound

    def test_top_levels_consistent_with_hierarchy(self, rng):
        ds = make_dataset(uniform_cube(80, 2, rng))
        res = build_hybrid_candidate(ds, epsilon=1.0)
        for i in range(res.params.height + 1):
            members = set(map(int, res.hierarchy.level(i)))
            for p in range(ds.n):
                assert (res.top_level[p] >= i) == (p in members)

    def test_smaller_than_gnet(self, rng):
        ds = make_dataset(uniform_cube(150, 2, rng))
        hybrid = build_hybrid_candidate(ds, epsilon=1.0)
        gnet = build_gnet(ds, epsilon=1.0)
        assert hybrid.graph.num_edges < gnet.graph.num_edges

    def test_deterministic(self, rng):
        ds = make_dataset(uniform_cube(60, 2, rng))
        a = build_hybrid_candidate(ds, epsilon=1.0)
        b = build_hybrid_candidate(ds, epsilon=1.0)
        assert a.graph == b.graph


class TestProbe:
    def test_report_fields(self, rng):
        ds = make_dataset(uniform_cube(80, 2, rng))
        queries = list(uniform_queries(20, np.asarray(ds.points), rng))
        report = probe_open_question(ds, 1.0, queries, gnet_edges=12345)
        for key in [
            "edges", "spine_edges", "lateral_edges", "open_question_budget",
            "within_budget", "violations", "vs_gnet",
        ]:
            assert key in report
        assert report["within_budget"]

    def test_probe_does_not_claim_the_theorem(self, rng):
        """The probe must *report* violations rather than hide them: on a
        near-data query batch we expect (and tolerate) failures — the
        structure is a question, not an answer."""
        ds = make_dataset(uniform_cube(200, 2, np.random.default_rng(5)))
        pts = np.asarray(ds.points)
        queries = [pts[i] * (1 + 1e-9) for i in range(0, 200, 4)]
        report = probe_open_question(ds, 1.0, queries)
        assert report["violations"] >= 0  # field present and countable
        assert report["queries"] == len(queries)
