"""Front-door input validation — the bugfix satellites of the serving PR.

Before these fixes: NaN queries traversed silently and returned
arbitrary ids with NaN distances; wrong-dimension queries died in a raw
numpy broadcast error; a misspelled build kwarg (``builder=`` instead
of ``method=``) surfaced as ``build_gnet() got an unexpected keyword
argument`` three frames deep.  A network front door receives exactly
these inputs first, so they must all fail at the boundary with errors
that name the problem.

Also pins two contracts that were true but untested: ``delete()`` batch
atomicity (an unknown id raises ``KeyError`` and leaves zero partial
tombstones) and the ``k > live`` padding tail (``ids == -1``,
``distances == inf``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ProximityGraphIndex, SearchParams, ShardedIndex
from repro.core.builders import (
    BUILDER_OPTIONS,
    available_builders,
    builder_options,
    validate_builder_options,
)
from repro.workloads import uniform_cube

KINDS = ["flat", "sharded"]
STORAGES = ["flat", "sq8", "pq"]


def _build(kind: str, storage: str = "flat", n: int = 80, seed: int = 3):
    pts = uniform_cube(n, 4, np.random.default_rng(seed))
    if kind == "flat":
        return ProximityGraphIndex.build(
            pts, epsilon=1.0, method="vamana", seed=seed, storage=storage
        )
    return ShardedIndex.build(
        pts, epsilon=1.0, method="vamana", seed=seed, shards=2, storage=storage
    )


# ----------------------------------------------------------------------
# Non-finite queries
# ----------------------------------------------------------------------


class TestNonFiniteQueries:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("storage", STORAGES)
    def test_nan_query_raises(self, kind, storage):
        index = _build(kind, storage)
        q = np.zeros(4)
        q[2] = np.nan
        with pytest.raises(ValueError, match="query contains non-finite values"):
            index.search(q, k=3)

    @pytest.mark.parametrize("kind", KINDS)
    def test_inf_query_raises(self, kind):
        index = _build(kind)
        with pytest.raises(ValueError, match="non-finite"):
            index.search(np.full(4, np.inf), k=1)

    @pytest.mark.parametrize("kind", KINDS)
    def test_one_bad_row_fails_the_batch(self, kind):
        index = _build(kind)
        Q = np.zeros((3, 4))
        Q[1, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            index.search(Q, k=2)

    @pytest.mark.parametrize("kind", KINDS)
    def test_finite_queries_unaffected(self, kind):
        index = _build(kind)
        result = index.search(np.full(4, 0.5), k=3)
        assert (result.ids >= 0).all()
        assert np.isfinite(result.distances).all()


# ----------------------------------------------------------------------
# Dimension mismatch
# ----------------------------------------------------------------------


class TestDimensionMismatch:
    @pytest.mark.parametrize("kind", KINDS)
    def test_wrong_dim_names_both_dims(self, kind):
        index = _build(kind)
        with pytest.raises(
            ValueError, match=r"query dim 6 does not match index dim 4"
        ):
            index.search(np.zeros(6), k=1)

    @pytest.mark.parametrize("kind", KINDS)
    def test_wrong_dim_batch(self, kind):
        index = _build(kind)
        with pytest.raises(ValueError, match="query dim 2"):
            index.search(np.zeros((5, 2)), k=1)


# ----------------------------------------------------------------------
# Unknown build options
# ----------------------------------------------------------------------


class TestBuildOptionValidation:
    def test_builder_kwarg_typo_is_a_front_door_error(self):
        pts = uniform_cube(40, 3, np.random.default_rng(0))
        with pytest.raises(ValueError) as exc:
            ProximityGraphIndex.build(pts, builder="vamana")
        msg = str(exc.value)
        assert "unknown build option" in msg and "'builder'" in msg
        # The error teaches the fix: method= and the registered names.
        assert "method=" in msg
        assert "vamana" in msg

    def test_sharded_build_validates_before_partitioning(self):
        pts = uniform_cube(40, 3, np.random.default_rng(0))
        with pytest.raises(ValueError, match="unknown build option"):
            ShardedIndex.build(pts, shards=2, builder="vamana")

    def test_unknown_method_lists_builders(self):
        pts = uniform_cube(40, 3, np.random.default_rng(0))
        with pytest.raises(ValueError, match="unknown builder 'hnsww'"):
            ProximityGraphIndex.build(pts, method="hnsww")

    def test_batch_size_on_sequential_builder_keeps_its_message(self):
        pts = uniform_cube(40, 3, np.random.default_rng(0))
        with pytest.raises(
            ValueError, match="does not support batched construction"
        ):
            ProximityGraphIndex.build(pts, method="knn", k=4, batch_size=8)

    def test_valid_options_still_pass(self):
        pts = uniform_cube(40, 3, np.random.default_rng(0))
        index = ProximityGraphIndex.build(
            pts, method="vamana", seed=1, max_degree=8
        )
        assert index.n == 40

    def test_every_registered_builder_has_an_allow_list(self):
        for name in available_builders():
            assert BUILDER_OPTIONS.get(name) is not None, name

    def test_builder_options_helper(self):
        assert "k" in builder_options("knn")
        assert "max_degree" in builder_options("vamana")
        with pytest.raises(ValueError, match="unknown builder"):
            builder_options("nope")

    def test_validate_rejects_mixed_valid_and_invalid(self):
        with pytest.raises(ValueError, match=r"\['zap'\]"):
            validate_builder_options("vamana", {"max_degree": 8, "zap": 1})


# ----------------------------------------------------------------------
# delete() batch atomicity
# ----------------------------------------------------------------------


class TestDeleteAtomicity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_unknown_id_raises_keyerror_and_deletes_nothing(self, kind):
        index = _build(kind)
        with pytest.raises(KeyError):
            index.delete([0, 1, 99999])
        # Atomic: the known ids of the failed batch were NOT tombstoned
        # — deleting them afterwards still counts both as fresh.
        assert index.tombstone_count == 0
        assert index.delete([0, 1]) == 2

    @pytest.mark.parametrize("kind", KINDS)
    def test_double_delete_is_a_counted_noop(self, kind):
        index = _build(kind)
        assert index.delete([3, 5]) == 2
        assert index.delete([3, 5]) == 0
        assert index.tombstone_count == 2


# ----------------------------------------------------------------------
# k > live padding contract
# ----------------------------------------------------------------------


class TestPaddingContract:
    @pytest.mark.parametrize("kind", KINDS)
    def test_k_exceeding_live_pads_with_sentinels(self, kind):
        index = _build(kind, n=24)
        live = [int(e) for e in range(4)]
        result = index.search(
            np.full(4, 0.5), k=9, params=SearchParams(allowed_ids=live)
        )
        row_ids, row_d = result.ids[0], result.distances[0]
        found = (row_ids >= 0).sum()
        assert found == len(live)
        # The tail is all sentinels, contiguously at the end.
        assert (row_ids[found:] == -1).all()
        assert np.isinf(row_d[found:]).all()
        assert np.isfinite(row_d[:found]).all()

    @pytest.mark.parametrize("kind", KINDS)
    def test_fully_tombstoned_collection_pads_everything(self, kind):
        index = _build(kind, n=20)
        index.delete(list(range(20)))
        result = index.search(np.full(4, 0.5), k=3)
        assert (result.ids == -1).all()
        assert np.isinf(result.distances).all()
