"""Cross-module integration tests: full pipelines over multiple metrics,
builders, and query regimes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProximityGraphIndex, build
from repro.graphs import build_gnet, find_violations, greedy
from repro.metrics import (
    Dataset,
    EuclideanMetric,
    MinkowskiMetric,
    normalize_min_distance,
)
from repro.workloads import (
    gaussian_clusters,
    geometric_clusters,
    low_doubling_curve,
    make_dataset,
    uniform_cube,
)
from tests.conftest import mixed_queries

GUARANTEED = ["gnet", "theta", "merged", "diskann", "complete"]


class TestAllGuaranteedBuildersSatisfyEpsilon:
    @pytest.mark.parametrize("name", GUARANTEED)
    def test_epsilon_satisfied_from_every_start(self, name, rng):
        eps = 1.0
        ds = make_dataset(gaussian_clusters(60, 2, rng, clusters=3))
        options = {"theta": 0.35} if name in ("theta", "merged") else {}
        if name == "theta":
            # a generous angle is NOT covered by Lemma 5.1's guarantee;
            # use the prescribed one for the guarantee test
            options = {}
        built = build(name, ds, eps, rng, **options)
        for _ in range(8):
            q = rng.uniform(-2, 35, size=2)
            nn = ds.distances_to_query_all(q).min()
            for start in rng.integers(ds.n, size=4):
                result = greedy(built.graph, ds, int(start), q)
                assert result.distance <= (1 + eps) * nn + 1e-9, (
                    f"{name} violated (1+eps) from start {start}"
                )


class TestAcrossMetrics:
    def test_gnet_on_l4_metric(self, rng):
        pts = uniform_cube(60, 2, rng)
        ds = Dataset(MinkowskiMetric(4.0), pts)
        ds, _ = normalize_min_distance(ds)
        res = build_gnet(ds, epsilon=1.0, method="vectorized")
        queries = [rng.uniform(-1, 35, size=2) for _ in range(15)]
        assert find_violations(res.graph, ds, queries, 1.0, stop_at=None) == []

    def test_gnet_on_high_ambient_low_doubling(self, rng):
        """A curve in R^6: the ambient dimension is irrelevant, the graph
        stays navigable and reasonably sparse."""
        ds = make_dataset(low_doubling_curve(80, 6, rng))
        res = build_gnet(ds, epsilon=1.0)
        queries = [np.asarray(ds.points)[i] * 1.01 for i in range(0, 80, 10)]
        assert find_violations(res.graph, ds, queries, 1.0, stop_at=None) == []
        assert res.graph.num_edges < ds.n**2 / 2

    def test_high_aspect_ratio_workload(self, rng):
        """Fractal clusters with Delta ~ 8^5: all levels of the hierarchy
        are exercised."""
        ds = make_dataset(geometric_clusters(70, 2, rng, levels=5))
        res = build_gnet(ds, epsilon=1.0)
        assert res.params.height >= 10
        queries = mixed_queries(ds, rng, m=16)
        assert find_violations(res.graph, ds, queries, 1.0, stop_at=None) == []


class TestEndToEndPersistence:
    def test_graph_roundtrip_preserves_navigability(self, tmp_path, rng):
        ds = make_dataset(uniform_cube(60, 2, rng))
        res = build_gnet(ds, epsilon=0.5)
        path = tmp_path / "gnet.npz"
        res.graph.save(path)
        from repro.graphs import ProximityGraph

        loaded = ProximityGraph.load(path)
        queries = mixed_queries(ds, rng, m=12)
        assert find_violations(loaded, ds, queries, 0.5, stop_at=None) == []


class TestFacadeAcrossBuilders:
    @pytest.mark.parametrize(
        "method,opts",
        [
            ("gnet", {}),
            ("merged", {"theta": 0.4}),
            ("diskann", {}),
            ("hnsw", {}),
            ("nsw", {}),
        ],
    )
    def test_build_query_measure(self, method, opts, rng):
        pts = uniform_cube(70, 2, rng)
        index = ProximityGraphIndex.build(
            pts, epsilon=1.0, method=method, seed=1, **opts
        )
        stats = index.measure([rng.uniform(size=2) for _ in range(8)])
        assert stats.num_queries == 8
        if index.built.guaranteed:
            assert stats.epsilon_satisfied_fraction == 1.0


class TestGNetPropertyBased:
    @given(
        st.integers(10, 26),
        st.sampled_from([1.0, 0.5]),
        st.integers(0, 10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_instances_navigable(self, n, eps, seed):
        """Hypothesis: arbitrary small Euclidean instances produce
        navigable G_nets — the library's central invariant."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 50, size=(n, 2))
        ds = Dataset(EuclideanMetric(), np.unique(pts, axis=0))
        if ds.n < 2:
            return
        ds, _ = normalize_min_distance(ds)
        res = build_gnet(ds, epsilon=eps, method="vectorized")
        queries = [rng.uniform(-10, 150, size=2) for _ in range(6)]
        queries += [np.asarray(ds.points)[int(rng.integers(ds.n))]]
        assert find_violations(res.graph, ds, queries, eps, stop_at=None) == []

    @given(st.integers(8, 20), st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_instances_min_degree(self, n, seed):
        """Proposition 2.1 under hypothesis."""
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(n, 3)) * 10
        ds = Dataset(EuclideanMetric(), np.unique(pts, axis=0))
        if ds.n < 2:
            return
        ds, _ = normalize_min_distance(ds)
        res = build_gnet(ds, epsilon=1.0, method="vectorized")
        assert res.graph.min_out_degree() >= 1
