"""Structural integrity checks (`repro.core.integrity`) by failure
injection: every invariant is corrupted at least once and must fire
with its name in the violation message, and clean indexes (flat and
sharded, live and reloaded) must pass.  Also pins the CLI surface:
``repro index info --validate`` exits 1 and prints the violated
invariant when the saved artifact is corrupt.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import ProximityGraphIndex, ShardedIndex
from repro.cli import main
from repro.core.integrity import (
    IntegrityError,
    check_flat_index,
    check_index,
    check_sharded_index,
    check_sharded_manifest,
    integrity_report,
)
from repro.core.persistence import MANIFEST_NAME

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _points(seed: int = 0, n: int = 80, d: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).uniform(size=(n, d))


@pytest.fixture
def flat_index() -> ProximityGraphIndex:
    return ProximityGraphIndex.build(_points(), method="vamana", seed=0)


# ----------------------------------------------------------------------
# Duck-typed fakes: each one corrupts exactly one invariant, so every
# branch of check_flat_index is reachable without fighting real
# builder internals.
# ----------------------------------------------------------------------


class _Graph:
    def __init__(self, offsets: np.ndarray, targets: np.ndarray) -> None:
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self._targets = np.asarray(targets, dtype=np.intp)

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        return self._offsets, self._targets


class _IdMap:
    def __init__(self, externals: np.ndarray) -> None:
        self.externals = np.asarray(externals)


class _Store:
    def __init__(self, n: int) -> None:
        self.n = n


class _Fake:
    """Minimal structural double for a flat index (n=3, ring graph)."""

    def __init__(self, **overrides: object) -> None:
        self.n = 3
        self.active_count = 3
        self.graph = _Graph([0, 2, 4, 6], [1, 2, 0, 2, 0, 1])
        self._tombstones = np.zeros(3, dtype=bool)
        self.id_map = _IdMap(np.arange(3))
        self.store = _Store(3)
        for key, value in overrides.items():
            setattr(self, key, value)


def _violation_names(violations: list[str]) -> set[str]:
    return {v.split(":", 1)[0] for v in violations}


class TestFlatInvariants:
    def test_clean_fake_passes(self):
        assert check_flat_index(_Fake()) == []

    def test_csr_offsets_shape(self):
        fake = _Fake(graph=_Graph([0, 2, 4], [1, 2, 0, 2]))
        assert _violation_names(check_flat_index(fake)) == {"csr-offsets-shape"}

    def test_csr_offsets_start(self):
        fake = _Fake(graph=_Graph([1, 2, 4, 6], [1, 2, 0, 2, 0, 1]))
        assert "csr-offsets-start" in _violation_names(check_flat_index(fake))

    def test_csr_offsets_monotone(self):
        fake = _Fake(graph=_Graph([0, 4, 2, 6], [1, 2, 0, 2, 0, 1]))
        assert "csr-offsets-monotone" in _violation_names(
            check_flat_index(fake)
        )

    def test_csr_offsets_span(self):
        fake = _Fake(graph=_Graph([0, 2, 4, 5], [1, 2, 0, 2, 0, 1]))
        assert "csr-offsets-span" in _violation_names(check_flat_index(fake))

    def test_csr_targets_range(self):
        fake = _Fake(graph=_Graph([0, 2, 4, 6], [1, 2, 0, 9, 0, 1]))
        assert "csr-targets-range" in _violation_names(check_flat_index(fake))

    def test_tombstone_shape(self):
        fake = _Fake(_tombstones=np.zeros(5, dtype=bool))
        assert "tombstone-shape" in _violation_names(check_flat_index(fake))

    def test_tombstone_count(self):
        fake = _Fake(active_count=2)
        assert "tombstone-count" in _violation_names(check_flat_index(fake))

    def test_external_id_shape(self):
        fake = _Fake(id_map=_IdMap(np.arange(2)))
        assert "external-id-shape" in _violation_names(check_flat_index(fake))

    def test_external_id_negative(self):
        fake = _Fake(id_map=_IdMap(np.array([0, -1, 2])))
        assert "external-id-negative" in _violation_names(
            check_flat_index(fake)
        )

    def test_external_id_unique(self):
        fake = _Fake(id_map=_IdMap(np.array([0, 1, 1])))
        assert "external-id-unique" in _violation_names(check_flat_index(fake))

    def test_storage_count(self):
        fake = _Fake(store=_Store(7))
        assert "storage-count" in _violation_names(check_flat_index(fake))

    def test_label_prefixes_violations(self):
        fake = _Fake(store=_Store(7))
        (violation,) = check_flat_index(fake, label="shard[1]")
        assert violation.startswith("shard[1]: storage-count")


class TestRealIndexes:
    def test_built_flat_index_is_clean(self, flat_index):
        assert check_flat_index(flat_index) == []
        report = integrity_report(flat_index)
        assert report["ok"] and report["violations"] == []

    def test_corrupted_targets_fire_on_real_index(self, flat_index):
        _, targets = flat_index.graph.csr()
        targets[0] = flat_index.n + 5  # simulated bit-rot
        assert "csr-targets-range" in _violation_names(
            check_flat_index(flat_index)
        )

    def test_strict_mode_raises_with_invariant_name(self, flat_index):
        _, targets = flat_index.graph.csr()
        targets[0] = -3
        with pytest.raises(IntegrityError, match="csr-targets-range"):
            integrity_report(flat_index, strict=True)

    def test_built_sharded_index_is_clean(self):
        sharded = ShardedIndex.build(
            _points(), method="vamana", shards=2, seed=0
        )
        assert check_sharded_index(sharded) == []
        assert check_index(sharded) == []

    def test_cross_shard_duplicate_externals(self):
        sharded = ShardedIndex.build(
            _points(), method="vamana", shards=2, seed=0
        )
        # Clone shard 1's external-id array with a value stolen from
        # shard 0 — only the *cross-shard* invariant should fire.
        stolen = int(np.asarray(sharded.shards[0].id_map.externals)[0])
        # ``externals`` is a read-only view; corrupt the backing array.
        sharded.shards[1].id_map._ext[0] = stolen
        names = _violation_names(check_sharded_index(sharded))
        assert "external-id-unique-across-shards" in names


class TestManifestChecks:
    def _saved_sharded(self, tmp_path):
        sharded = ShardedIndex.build(
            _points(), method="vamana", shards=2, seed=0
        )
        out = tmp_path / "sharded_idx"
        sharded.save(out)
        return out

    def test_clean_manifest_passes(self, tmp_path):
        out = self._saved_sharded(tmp_path)
        assert check_sharded_manifest(out) == []

    def test_shard_count_mismatch(self, tmp_path):
        out = self._saved_sharded(tmp_path)
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        manifest["shards"] = 5
        (out / MANIFEST_NAME).write_text(json.dumps(manifest))
        names = _violation_names(check_sharded_manifest(out))
        assert names == {"manifest-shard-count"}

    def test_non_integer_shard_count(self, tmp_path):
        out = self._saved_sharded(tmp_path)
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        manifest["shards"] = "two"
        (out / MANIFEST_NAME).write_text(json.dumps(manifest))
        assert "manifest-shard-count" in _violation_names(
            check_sharded_manifest(out)
        )

    def test_missing_shard_file(self, tmp_path):
        out = self._saved_sharded(tmp_path)
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        victim = manifest["shard_files"][0]
        (out / victim).unlink()
        assert "manifest-shard-files" in _violation_names(
            check_sharded_manifest(out)
        )

    def test_manifest_missing(self, tmp_path):
        empty = tmp_path / "not_an_index"
        empty.mkdir()
        assert "manifest-missing" in _violation_names(
            check_sharded_manifest(empty)
        )

    def test_manifest_unreadable(self, tmp_path):
        out = self._saved_sharded(tmp_path)
        (out / MANIFEST_NAME).write_text("{not json")
        assert "manifest-unreadable" in _violation_names(
            check_sharded_manifest(out)
        )


class TestCliValidate:
    def test_flat_validate_clean(self, tmp_path, flat_index, capsys):
        saved = flat_index.save(tmp_path / "flat.npz")
        assert main(["index", "info", str(saved), "--validate"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["integrity"]["ok"] is True

    def test_sharded_validate_clean(self, tmp_path, capsys):
        sharded = ShardedIndex.build(
            _points(), method="vamana", shards=2, seed=0
        )
        out = tmp_path / "sharded_idx"
        sharded.save(out)
        assert main(["index", "info", str(out), "--validate"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["integrity"]["ok"] is True

    def test_corrupt_manifest_fails_loud(self, tmp_path, capsys):
        sharded = ShardedIndex.build(
            _points(), method="vamana", shards=2, seed=0
        )
        out = tmp_path / "sharded_idx"
        sharded.save(out)
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        manifest["shards"] = 5
        (out / MANIFEST_NAME).write_text(json.dumps(manifest))
        assert main(["index", "info", str(out), "--validate"]) == 1
        err = capsys.readouterr().err
        assert "INTEGRITY VIOLATION" in err
        assert "manifest-shard-count" in err

    def test_info_without_validate_still_works(self, tmp_path, flat_index, capsys):
        saved = flat_index.save(tmp_path / "flat.npz")
        assert main(["index", "info", str(saved)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "integrity" not in payload
