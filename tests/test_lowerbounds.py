"""Tests for the Theorem 1.2 hard instances and executable adversaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import build_complete_graph
from repro.graphs import build_gnet, find_violations
from repro.lowerbounds import (
    attack_block_graph,
    attack_tree_graph,
    build_block_instance,
    build_tree_instance,
)


class TestTreeInstanceConstruction:
    def test_paper_preconditions_enforced(self):
        with pytest.raises(ValueError, match="powers of two"):
            build_tree_instance(10, 128)
        with pytest.raises(ValueError, match="n\\^2"):
            build_tree_instance(64, 8)  # 2*Delta < n^2

    def test_relaxed_mode(self):
        inst = build_tree_instance(8, 32, strict=False)
        assert inst.dataset.n == 8 + len(inst.p2)

    def test_sizes_and_disjointness(self):
        inst = build_tree_instance(16, 128)
        assert len(inst.p1) == 16
        assert len(inst.p2) == inst.height - inst.height // 2
        p1_leaves = set(inst.dataset.points[inst.p1].tolist())
        p2_leaves = set(inst.dataset.points[inst.p2].tolist())
        assert not (p1_leaves & p2_leaves)
        # |P| between n and 3n/2 (paper's accounting).
        assert 16 <= inst.dataset.n <= 24

    def test_aspect_ratio_is_delta(self):
        inst = build_tree_instance(16, 128)
        assert inst.dataset.diameter() == 2 * 128  # diam = 2^h = 2 Delta
        assert inst.dataset.min_interpoint_distance() == 2.0
        assert inst.dataset.aspect_ratio() == 128

    def test_required_edge_count_formula(self):
        inst = build_tree_instance(16, 128)
        assert inst.required_edge_count == len(inst.p1) * len(inst.p2)
        assert inst.required_edge_count == len(list(inst.required_edges()))


class TestTreeLowerBound:
    def test_gnet_contains_all_required_edges(self):
        """Consistency: G_net at eps=1 is a 2-PG, so it must carry every
        P1 x P2 edge — the lower bound is tight against our own builder."""
        inst = build_tree_instance(16, 128)
        res = build_gnet(inst.dataset, epsilon=1.0, method="vectorized")
        assert inst.missing_required_edges(res.graph) == []
        assert res.graph.num_edges >= inst.required_edge_count

    def test_gnet_exhaustively_navigable_on_all_of_m(self):
        """The query universe M (all 2*Delta leaves) is finite: check
        Fact 2.1 on every single query point."""
        inst = build_tree_instance(4, 16, strict=False)
        res = build_gnet(inst.dataset, epsilon=1.0, method="vectorized")
        violations = find_violations(
            res.graph, inst.dataset, list(inst.all_metric_points()), 1.0,
            stop_at=None,
        )
        assert violations == []

    def test_complete_graph_survives_attack(self):
        inst = build_tree_instance(8, 64, strict=False)
        g = build_complete_graph(inst.dataset)
        assert attack_tree_graph(g, inst) is None

    def test_attack_defeats_any_single_missing_edge(self):
        """Remove each required edge in turn: the adversary must produce a
        valid certificate every time (the Section 3 case analysis)."""
        inst = build_tree_instance(4, 16, strict=False)
        base = build_complete_graph(inst.dataset)
        for v1, v2 in list(inst.required_edges())[:12]:
            g = base.copy()
            g.set_out_neighbors(
                v1, [x for x in g.out_neighbors(v1) if int(x) != v2]
            )
            cert = attack_tree_graph(g, inst)
            assert cert is not None, f"adversary failed on missing edge {(v1, v2)}"
            assert cert.is_valid()
            assert cert.missing_edge == (v1, v2)
            assert cert.returned_distance > 0  # stuck away from the NN

    def test_certificate_reports_greedy_stuck_at_start(self):
        inst = build_tree_instance(4, 16, strict=False)
        g = build_complete_graph(inst.dataset)
        v1, v2 = next(inst.required_edges())
        g.set_out_neighbors(v1, [x for x in g.out_neighbors(v1) if int(x) != v2])
        cert = attack_tree_graph(g, inst)
        # The Section 3 analysis: no out-neighbor improves, so greedy
        # cannot leave v1.
        assert cert.returned_point == v1

    def test_edge_count_grows_like_n_log_delta(self):
        """The bound n * floor(h/2) grows linearly in log Delta at fixed n."""
        counts = [
            build_tree_instance(8, delta, strict=False).required_edge_count
            for delta in [32, 128, 512]
        ]
        diffs = np.diff(counts)
        assert (diffs > 0).all()
        assert abs(diffs[1] - diffs[0]) <= 8  # linear in log2(Delta): equal steps


class TestBlockInstanceConstruction:
    def test_sizes(self):
        inst = build_block_instance(side=3, copies=2, dim=2)
        assert inst.n == 9 * 2
        assert inst.epsilon == pytest.approx(1 / 6)
        assert inst.required_edge_count == 9 * 8 * 2

    def test_normalized_dataset_min_distance(self):
        inst = build_block_instance(side=3, copies=2, dim=2)
        norm = inst.normalized_dataset()
        assert norm.min_interpoint_distance() == pytest.approx(2.0)

    def test_aspect_ratio_linear_in_n(self):
        inst = build_block_instance(side=2, copies=5, dim=1)
        assert inst.dataset.aspect_ratio() < 2 * inst.side * inst.copies


class TestBlockLowerBound:
    def test_gnet_contains_all_intra_block_edges(self):
        """G_net at eps = 1/(2s) must survive Alice — so it carries every
        intra-block edge."""
        inst = build_block_instance(side=2, copies=2, dim=2)
        res = build_gnet(
            inst.normalized_dataset(), epsilon=inst.epsilon, method="vectorized"
        )
        assert inst.missing_required_edges(res.graph) == []
        assert res.graph.num_edges >= inst.required_edge_count

    def test_complete_graph_survives(self):
        inst = build_block_instance(side=2, copies=2, dim=1)
        g = build_complete_graph(inst.dataset)
        assert attack_block_graph(g, inst) is None

    def test_attack_defeats_each_missing_intra_block_edge(self):
        inst = build_block_instance(side=2, copies=2, dim=1)
        base = build_complete_graph(inst.dataset)
        for p1, p2 in list(inst.required_edges())[:8]:
            g = base.copy()
            g.set_out_neighbors(p1, [x for x in g.out_neighbors(p1) if int(x) != p2])
            cert = attack_block_graph(g, inst)
            assert cert is not None and cert.is_valid()
            assert cert.missing_edge == (p1, p2)

    def test_attack_certificate_distances(self):
        inst = build_block_instance(side=3, copies=2, dim=2)
        base = build_complete_graph(inst.dataset)
        p1, p2 = next(inst.required_edges())
        g = base.copy()
        g.set_out_neighbors(p1, [x for x in g.out_neighbors(p1) if int(x) != p2])
        cert = attack_block_graph(g, inst)
        assert cert.nn_distance == inst.side - 1
        assert cert.returned_distance >= inst.side

    def test_cross_block_edges_unnecessary(self):
        """The bound is about *intra*-block pairs only: a graph with all
        intra-block cliques plus a block-path survives the adversary."""
        inst = build_block_instance(side=2, copies=3, dim=1)
        edges = list(inst.required_edges())
        # chain the blocks so greedy can travel between them
        for b in range(inst.copies - 1):
            edges.append((int(inst.metric.block_members(b)[0]),
                          int(inst.metric.block_members(b + 1)[0])))
            edges.append((int(inst.metric.block_members(b + 1)[0]),
                          int(inst.metric.block_members(b)[0])))
        from repro.graphs import ProximityGraph

        g = ProximityGraph.from_edge_list(inst.n, edges)
        assert attack_block_graph(g, inst) is None

    def test_committed_navigability_exhaustive(self):
        """For every choice of p*, the complete graph is (1+eps)-navigable
        under D_{p*} on the full finite universe P + {q}."""
        inst = build_block_instance(side=2, copies=1, dim=2)
        g = build_complete_graph(inst.dataset)
        for p_star in range(inst.n):
            ds, qid = inst.committed_dataset(p_star)
            queries = list(range(inst.n)) + [qid]
            assert find_violations(g, ds, queries, inst.epsilon, stop_at=None) == []

    def test_required_edges_scale(self):
        """Omega(s^d * n): growing s at fixed n-scale grows edges/point."""
        per_point = []
        for s in [2, 3, 4]:
            inst = build_block_instance(side=s, copies=2, dim=2)
            per_point.append(inst.required_edge_count / inst.n)
        assert per_point == sorted(per_point)
