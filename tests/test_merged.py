"""Tests for the merged Euclidean graph of Theorem 1.3 (Section 5.2-5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    build_gnet,
    build_merged_graph,
    build_theta_graph,
    find_violations,
    greedy,
    jackpot_rate,
)
from tests.conftest import mixed_queries

# A generous cone angle for tests: Lemma 5.1's eps/32 needs ~200 cones at
# eps=1, which is exact but slow to exercise repeatedly; correctness tests
# that rely on the guarantee use the exact angle once in test_theta.py.
TEST_THETA = 0.35


class TestJackpotRate:
    def test_formula(self):
        assert jackpot_rate(3.0, aspect_ratio=256.0) == pytest.approx(3.0 / 8.0)

    def test_caps_at_one(self):
        assert jackpot_rate(10.0, aspect_ratio=4.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jackpot_rate(0.0, 16.0)
        with pytest.raises(ValueError):
            jackpot_rate(1.0, 0.5)


class TestMergedStructure:
    def test_theta_edges_always_present(self, uniform2d, rng):
        res = build_merged_graph(uniform2d, epsilon=1.0, rng=rng, theta=TEST_THETA)
        for u in range(uniform2d.n):
            theta_nbrs = set(map(int, res.geo.graph.out_neighbors(u)))
            merged_nbrs = set(map(int, res.graph.out_neighbors(u)))
            assert theta_nbrs <= merged_nbrs

    def test_jackpot_vertices_keep_gnet_edges(self, uniform2d, rng):
        res = build_merged_graph(uniform2d, epsilon=1.0, rng=rng, theta=TEST_THETA)
        for u in np.flatnonzero(res.jackpot):
            gnet_nbrs = set(map(int, res.gnet.graph.out_neighbors(int(u))))
            merged_nbrs = set(map(int, res.graph.out_neighbors(int(u))))
            assert gnet_nbrs <= merged_nbrs

    def test_non_jackpot_vertices_have_only_theta_edges(self, uniform2d, rng):
        res = build_merged_graph(uniform2d, epsilon=1.0, rng=rng, theta=TEST_THETA)
        for u in np.flatnonzero(~res.jackpot):
            merged = set(map(int, res.graph.out_neighbors(int(u))))
            theta = set(map(int, res.geo.graph.out_neighbors(int(u))))
            assert merged == theta

    def test_smaller_than_gnet(self, uniform2d, rng):
        res = build_merged_graph(uniform2d, epsilon=1.0, rng=rng, theta=TEST_THETA)
        if res.tau < 1.0:
            assert res.graph.num_edges < res.gnet.graph.num_edges

    def test_multiple_runs_keep_smallest(self, uniform2d, rng):
        res = build_merged_graph(
            uniform2d, epsilon=1.0, rng=rng, runs=6, theta=TEST_THETA
        )
        assert len(res.runs_edge_counts) == 6
        assert res.graph.num_edges == min(res.runs_edge_counts)

    def test_reuses_prebuilt_parts(self, uniform2d, rng):
        gnet = build_gnet(uniform2d, epsilon=1.0)
        geo = build_theta_graph(uniform2d, TEST_THETA)
        res = build_merged_graph(uniform2d, 1.0, rng, gnet=gnet, geo=geo)
        assert res.gnet is gnet
        assert res.geo is geo


class TestMergedNavigability:
    def test_navigable_via_inherited_theta_guarantee(self, uniform2d, rng):
        """Section 5.2: the merge is (1+eps)-navigable because G_geo's
        out-edges survive — with the *exact* Lemma 5.1 angle."""
        eps = 1.0
        res = build_merged_graph(uniform2d, epsilon=eps, rng=rng)  # theta=eps/32
        queries = mixed_queries(uniform2d, rng, m=24)
        assert find_violations(res.graph, uniform2d, queries, eps, stop_at=None) == []

    def test_greedy_finds_ann_from_any_start(self, uniform2d, rng):
        eps = 1.0
        res = build_merged_graph(uniform2d, epsilon=eps, rng=rng, theta=TEST_THETA)
        for _ in range(10):
            q = rng.uniform(-5, 30, size=2)
            nn = uniform2d.distances_to_query_all(q).min()
            start = int(rng.integers(uniform2d.n))
            result = greedy(res.graph, uniform2d, start, q)
            assert result.distance <= (1 + eps) * nn + 1e-9

    def test_query_budget_positive(self, uniform2d, rng):
        res = build_merged_graph(uniform2d, epsilon=1.0, rng=rng, theta=TEST_THETA)
        assert res.query_budget(doubling_dimension=2.0) > 0


class TestSamplingBehavior:
    def test_tau_one_keeps_everything(self, uniform2d, rng):
        res = build_merged_graph(
            uniform2d, epsilon=1.0, rng=rng, z=1e9, theta=TEST_THETA
        )
        assert res.tau == 1.0
        assert res.jackpot.all()
        merged_expected = res.gnet.graph.merge(res.geo.graph)
        assert res.graph == merged_expected

    def test_jackpot_fraction_near_tau(self, uniform2d):
        rng = np.random.default_rng(99)
        res = build_merged_graph(
            uniform2d, epsilon=1.0, rng=rng, z=2.0, runs=1, theta=TEST_THETA
        )
        frac = res.jackpot.mean()
        assert abs(frac - res.tau) < 0.2

    def test_deterministic_given_rng_state(self, uniform2d):
        a = build_merged_graph(
            uniform2d, 1.0, np.random.default_rng(5), theta=TEST_THETA
        )
        b = build_merged_graph(
            uniform2d, 1.0, np.random.default_rng(5), theta=TEST_THETA
        )
        assert a.graph == b.graph
        assert np.array_equal(a.jackpot, b.jackpot)
