"""Unit tests for the metric-space substrate (repro.metrics.base)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    Dataset,
    EuclideanMetric,
    ExplicitMatrixMetric,
    ScaledMetric,
)


class TestDataset:
    def test_rejects_single_point(self):
        with pytest.raises(ValueError, match="at least 2"):
            Dataset(EuclideanMetric(), np.zeros((1, 2)))

    def test_index_distance_matches_metric(self, rng):
        pts = rng.normal(size=(10, 3))
        ds = Dataset(EuclideanMetric(), pts)
        assert ds.distance(2, 7) == pytest.approx(np.linalg.norm(pts[2] - pts[7]))

    def test_distances_from_index_batches(self, rng):
        pts = rng.normal(size=(12, 2))
        ds = Dataset(EuclideanMetric(), pts)
        idx = np.array([0, 3, 5])
        got = ds.distances_from_index(4, idx)
        want = [np.linalg.norm(pts[4] - pts[i]) for i in idx]
        assert np.allclose(got, want)

    def test_query_distances(self, rng):
        pts = rng.normal(size=(9, 2))
        ds = Dataset(EuclideanMetric(), pts)
        q = np.array([5.0, -1.0])
        assert np.allclose(
            ds.distances_to_query_all(q),
            np.linalg.norm(pts - q, axis=1),
        )

    def test_nearest_neighbor_exact(self, rng):
        pts = rng.normal(size=(30, 2))
        ds = Dataset(EuclideanMetric(), pts)
        q = rng.normal(size=2)
        nn, d = ds.nearest_neighbor(q)
        dists = np.linalg.norm(pts - q, axis=1)
        assert nn == int(np.argmin(dists))
        assert d == pytest.approx(dists.min())

    def test_diameter_and_min_distance(self):
        pts = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0]])
        ds = Dataset(EuclideanMetric(), pts)
        assert ds.diameter() == pytest.approx(5.0)
        assert ds.min_interpoint_distance() == pytest.approx(3.0)
        assert ds.aspect_ratio() == pytest.approx(5.0 / 3.0)


class TestScaledMetric:
    def test_scales_distances(self):
        inner = EuclideanMetric()
        scaled = ScaledMetric(inner, 2.5)
        a, b = np.array([0.0, 0.0]), np.array([1.0, 0.0])
        assert scaled.distance(a, b) == pytest.approx(2.5)

    def test_scales_batches(self, rng):
        pts = rng.normal(size=(6, 2))
        scaled = ScaledMetric(EuclideanMetric(), 3.0)
        got = scaled.distances(pts[0], pts)
        assert np.allclose(got, 3.0 * np.linalg.norm(pts - pts[0], axis=1))

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            ScaledMetric(EuclideanMetric(), 0.0)

    def test_preserves_axioms(self, rng):
        pts = rng.normal(size=(8, 2))
        ScaledMetric(EuclideanMetric(), 7.0).check_axioms(pts)


class TestExplicitMatrixMetric:
    def test_basic_lookup(self):
        mat = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.5], [2.0, 1.5, 0.0]])
        m = ExplicitMatrixMetric(mat, validate_triangle=True)
        assert m.distance(0, 2) == 2.0
        assert np.allclose(m.distances(1, np.array([0, 2])), [1.0, 1.5])

    def test_rejects_asymmetric(self):
        mat = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            ExplicitMatrixMetric(mat)

    def test_rejects_nonzero_diagonal(self):
        mat = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="diagonal"):
            ExplicitMatrixMetric(mat)

    def test_rejects_negative(self):
        mat = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError, match="non-negative"):
            ExplicitMatrixMetric(mat)

    def test_triangle_validation_catches_violation(self):
        # D(0,2)=10 but D(0,1)+D(1,2)=2: not a metric.
        mat = np.array([[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]])
        with pytest.raises(AssertionError, match="triangle"):
            ExplicitMatrixMetric(mat, validate_triangle=True)


class TestAxiomChecker:
    def test_passes_on_euclidean(self, rng):
        EuclideanMetric().check_axioms(rng.normal(size=(10, 3)))

    def test_detects_triangle_violation(self):
        from repro.metrics import MetricSpace

        class Squared(MetricSpace):
            """Squared Euclidean distance — famously not a metric."""

            def distance(self, a, b):
                return float(np.sum((np.asarray(a) - np.asarray(b)) ** 2))

        pts = np.array([[0.0], [1.0], [2.0]])
        with pytest.raises(AssertionError, match="triangle"):
            Squared().check_axioms(pts)
