"""Unit + property tests for the coordinate metrics (L2, L_inf, Lp)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import ChebyshevMetric, EuclideanMetric, MinkowskiMetric

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestEuclidean:
    def test_known_value(self):
        assert EuclideanMetric().distance(
            np.array([0.0, 0.0]), np.array([3.0, 4.0])
        ) == pytest.approx(5.0)

    def test_batch_matches_scalar(self, rng):
        m = EuclideanMetric()
        pts = rng.normal(size=(20, 4))
        q = rng.normal(size=4)
        batch = m.distances(q, pts)
        for i in range(20):
            assert batch[i] == pytest.approx(m.distance(q, pts[i]))

    def test_pairwise_matches_batch(self, rng):
        m = EuclideanMetric()
        pts = rng.normal(size=(15, 3))
        pw = m.pairwise(pts)
        for i in range(15):
            assert np.allclose(pw[i], m.distances(pts[i], pts), atol=1e-9)

    def test_pairwise_zero_diagonal(self, rng):
        pw = EuclideanMetric().pairwise(rng.normal(size=(10, 5)))
        assert np.all(np.diag(pw) == 0.0)

    def test_single_row_batch(self):
        m = EuclideanMetric()
        out = m.distances(np.array([0.0, 0.0]), np.array([1.0, 0.0]))
        assert out.shape == (1,)
        assert out[0] == pytest.approx(1.0)

    @given(
        arrays(np.float64, (6, 3), elements=finite_floats),
    )
    @settings(max_examples=30, deadline=None)
    def test_axioms_property(self, pts):
        EuclideanMetric().check_axioms(pts, rtol=1e-8)


class TestChebyshev:
    def test_known_value(self):
        assert ChebyshevMetric().distance(
            np.array([0.0, 0.0]), np.array([3.0, -4.0])
        ) == pytest.approx(4.0)

    def test_batch_matches_scalar(self, rng):
        m = ChebyshevMetric()
        pts = rng.normal(size=(12, 3))
        q = rng.normal(size=3)
        batch = m.distances(q, pts)
        for i in range(12):
            assert batch[i] == pytest.approx(m.distance(q, pts[i]))

    def test_dominated_by_euclidean(self, rng):
        pts = rng.normal(size=(10, 4))
        linf = ChebyshevMetric().distances(pts[0], pts)
        l2 = EuclideanMetric().distances(pts[0], pts)
        assert np.all(linf <= l2 + 1e-12)

    @given(arrays(np.float64, (6, 2), elements=finite_floats))
    @settings(max_examples=30, deadline=None)
    def test_axioms_property(self, pts):
        ChebyshevMetric().check_axioms(pts, rtol=1e-8)


class TestMinkowski:
    def test_p1_is_manhattan(self):
        m = MinkowskiMetric(1.0)
        assert m.distance(np.array([0.0, 0.0]), np.array([1.0, 2.0])) == pytest.approx(3.0)

    def test_p2_matches_euclidean(self, rng):
        pts = rng.normal(size=(8, 3))
        got = MinkowskiMetric(2.0).distances(pts[0], pts)
        want = EuclideanMetric().distances(pts[0], pts)
        assert np.allclose(got, want)

    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            MinkowskiMetric(0.5)

    def test_monotone_in_p(self, rng):
        # Lp norms are non-increasing in p.
        pts = rng.normal(size=(10, 4))
        d1 = MinkowskiMetric(1.0).distances(pts[0], pts)
        d3 = MinkowskiMetric(3.0).distances(pts[0], pts)
        assert np.all(d3 <= d1 + 1e-12)

    @given(arrays(np.float64, (5, 2), elements=finite_floats))
    @settings(max_examples=20, deadline=None)
    def test_axioms_property(self, pts):
        MinkowskiMetric(3.0).check_axioms(pts, rtol=1e-8)
