"""Mutation of a built index: add / delete / compact with stable ids.

Contract under test (ISSUE 3):

* ``add()`` grows the collection; new points are findable, old external
  ids keep their meaning, and a rejected batch leaves the index
  untouched (dynamic mode pre-validates);
* the ``gnet`` dynamic path maintains Theorem 1.1's invariants — the
  index stays ``guaranteed`` and navigability-clean after insertions —
  while the generic repair path honestly drops the guarantee flag;
* ``delete()`` tombstones by external id: deleted points never appear
  in results but still route; ``compact()`` rebuilds over the survivors
  with equivalent answers (tombstone-then-compact equivalence);
* persistence v2 round-trips the id map and tombstone mask, and v1
  files (written before mutability) still load.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import ProximityGraphIndex, SearchParams
from repro.core.persistence import FORMAT_VERSION
from repro.metrics import Dataset, EuclideanMetric
from repro.workloads import uniform_cube


def brute_force_knn(pts: np.ndarray, q: np.ndarray, k: int) -> list[int]:
    d = np.linalg.norm(pts - q, axis=1)
    return np.argsort(d, kind="stable")[:k].tolist()


@pytest.fixture()
def vamana_index():
    pts = uniform_cube(200, 2, np.random.default_rng(8))
    return ProximityGraphIndex.build(pts, epsilon=1.0, method="vamana", seed=5)


class TestAddRepair:
    def test_added_points_are_findable(self, vamana_index):
        idx = vamana_index
        rng = np.random.default_rng(1)
        new = rng.uniform(size=(40, 2))
        ids = idx.add(new)
        assert ids.tolist() == list(range(200, 240))
        assert idx.n == 240 and idx.active_count == 240
        # an exact query of each added point finds it top-1
        r = idx.search(new, k=1, params=SearchParams(beam_width=48, mode="beam"))
        assert (r.ids[:, 0] == ids).sum() >= 38  # allow rare exact ties
        assert (r.distances[:, 0][r.ids[:, 0] == ids] == 0.0).all()

    def test_add_single_point(self, vamana_index):
        ids = vamana_index.add(np.array([0.5, 0.5]))
        assert len(ids) == 1
        assert vamana_index.search(np.array([0.5, 0.5])).top1()[0] == int(ids[0])

    def test_add_empty_is_noop(self, vamana_index):
        assert vamana_index.add(np.empty((0, 2))).tolist() == []
        assert vamana_index.n == 200

    def test_custom_external_ids(self):
        pts = uniform_cube(100, 2, np.random.default_rng(0))
        idx = ProximityGraphIndex.build(
            pts, epsilon=1.0, method="nsw", seed=1,
            ids=np.arange(1000, 1100),
        )
        q = pts[17]
        assert idx.search(q).top1()[0] == 1017
        new_ids = idx.add(np.array([[0.25, 0.25]]), ids=[7])
        assert new_ids.tolist() == [7]
        with pytest.raises(ValueError, match="already in use"):
            idx.add(np.array([[0.75, 0.75]]), ids=[1050])

    def test_id_clash_leaves_index_untouched(self, vamana_index, tmp_path):
        """Ids are validated before anything grows: a clash must not
        leave graph/dataset/id-map at inconsistent sizes."""
        idx = vamana_index
        with pytest.raises(ValueError, match="already in use"):
            idx.add(np.array([[0.5, 0.5]]), ids=[0])
        assert idx.n == 200 and len(idx.id_map) == 200
        assert idx.graph.n == 200
        # the index is still fully serviceable
        idx.save(tmp_path / "ok.npz")
        loaded = ProximityGraphIndex.load(tmp_path / "ok.npz")
        assert loaded.n == 200

    def test_negative_ids_rejected(self):
        pts = uniform_cube(20, 2, np.random.default_rng(0))
        with pytest.raises(ValueError, match="non-negative"):
            ProximityGraphIndex.build(
                pts, epsilon=1.0, method="complete", ids=np.arange(-5, 15)
            )
        idx = ProximityGraphIndex.build(pts, epsilon=1.0, method="complete")
        with pytest.raises(ValueError, match="non-negative"):
            idx.add(np.array([[0.5, 0.5]]), ids=[-3])
        assert idx.n == 20

    def test_repair_drops_guarantee_flag(self):
        pts = uniform_cube(120, 2, np.random.default_rng(2))
        idx = ProximityGraphIndex.build(pts, epsilon=1.0, method="theta", seed=0)
        assert idx.built.guaranteed
        idx.add(np.random.default_rng(3).uniform(size=(10, 2)), mode="repair")
        assert not idx.built.guaranteed
        assert idx.built.meta["repaired_inserts"] == 10

    def test_recall_after_add_matches_fresh_build(self):
        """An index grown by 25% stays within a small recall@10 margin of
        building over the full set from scratch (the acceptance bench
        does this at 1k scale; this is the fast in-suite version)."""
        rng = np.random.default_rng(13)
        pts = uniform_cube(500, 2, rng)
        queries = rng.uniform(size=(80, 2))
        grown = ProximityGraphIndex.build(
            pts[:400], epsilon=1.0, method="vamana", seed=6
        )
        grown.add(pts[400:], batch_size=50)
        fresh = ProximityGraphIndex.build(pts, epsilon=1.0, method="vamana", seed=6)

        def recall(index):
            r = index.search(
                queries, k=10, params=SearchParams(beam_width=48, seed=0)
            )
            hits = 0
            for i, q in enumerate(queries):
                gt = set(brute_force_knn(pts, q, 10))
                hits += len(gt & set(r.ids[i].tolist()))
            return hits / (len(queries) * 10)

        r_grown, r_fresh = recall(grown), recall(fresh)
        assert r_grown >= r_fresh - 0.02, (r_grown, r_fresh)


class TestAddDynamic:
    @pytest.fixture()
    def spaced(self):
        # A jittered grid: generous inter-point spacing so the dynamic
        # net's min-distance precondition holds for the added half too.
        rng = np.random.default_rng(4)
        grid = np.stack(np.meshgrid(np.arange(12), np.arange(12)), -1)
        pts = grid.reshape(-1, 2).astype(float)
        pts += rng.uniform(-0.25, 0.25, size=pts.shape)
        return pts

    def test_guarantee_survives_dynamic_add(self, spaced):
        idx = ProximityGraphIndex.build(spaced[:100], epsilon=1.0, method="gnet")
        assert idx.built.guaranteed
        ids = idx.add(spaced[100:])  # auto resolves to dynamic for gnet
        assert idx.built.guaranteed and idx.built.meta.get("dynamic")
        assert idx.n == 144 and len(ids) == 44
        # Theorem 1.1 invariants hold on the grown structure ...
        idx._dynamic.check_net_invariants()
        # ... and the (1+eps) promise is still navigable end-to-end.
        rng = np.random.default_rng(9)
        queries = [rng.uniform(0, 11, size=2) for _ in range(40)]
        assert idx.validate(queries, stop_at=None) == []

    def test_added_points_found_exactly(self, spaced):
        idx = ProximityGraphIndex.build(spaced[:100], epsilon=1.0, method="gnet")
        idx.add(spaced[100:110])
        for i in range(100, 110):
            got, dist = idx.search(spaced[i]).top1()
            assert got == i and dist == pytest.approx(0.0, abs=1e-12)

    def test_rejected_batch_is_atomic(self, spaced):
        idx = ProximityGraphIndex.build(spaced[:100], epsilon=1.0, method="gnet")
        before = idx.n
        good, bad = spaced[100], spaced[50] + 1e-4  # bad: on top of point 50
        with pytest.raises(ValueError, match="minimum inter-point"):
            idx.add(np.stack([good, bad]), mode="dynamic")
        assert idx.n == before
        # the good point alone still inserts fine afterwards
        idx.add(good[None], mode="dynamic")
        assert idx.n == before + 1

    def test_too_close_within_batch_rejected(self, spaced):
        idx = ProximityGraphIndex.build(spaced[:100], epsilon=1.0, method="gnet")
        p = spaced[120]
        with pytest.raises(ValueError, match="within the added batch"):
            idx.add(np.stack([p, p + 1e-4]), mode="dynamic")
        assert idx.n == 100

    def test_auto_falls_back_to_repair_on_rejection(self, spaced):
        """mode='auto' must absorb a batch the dynamic path rejects —
        the add succeeds via repair and the guarantee flag records it."""
        idx = ProximityGraphIndex.build(spaced[:100], epsilon=1.0, method="gnet")
        too_close = spaced[50] + 1e-3
        ids = idx.add(too_close[None])  # auto: dynamic rejects, repair absorbs
        assert ids.tolist() == [100]
        assert idx.n == 101 and idx.graph.n == 101
        assert not idx.built.guaranteed
        got, _dist = idx.search(
            too_close, params=SearchParams(mode="beam", beam_width=32)
        ).top1()
        assert got == 100

    def test_mixing_dynamic_and_repair_stays_consistent(self, spaced):
        """A repair add invalidates the dynamic net; a later dynamic add
        re-upgrades from the full collection — graph and dataset must
        never disagree on n."""
        idx = ProximityGraphIndex.build(spaced[:100], epsilon=1.0, method="gnet")
        idx.add(spaced[100:105], mode="dynamic")
        idx.add(spaced[105:110], mode="repair")
        assert idx._dynamic is None
        idx.add(spaced[110:115], mode="dynamic")
        assert idx.n == 115 and idx.graph.n == 115
        assert len(idx._dynamic) == 115
        # the re-upgrade re-validated every point into a proper net, so
        # the guarantee lapsed by the repair add is restored
        assert idx.built.guaranteed
        assert idx.validate([spaced[60], spaced[107]], stop_at=None) == []
        for i in (102, 107, 112):  # one point from each add
            assert idx.search(spaced[i]).top1()[0] == i

    def test_dynamic_mode_rejected_for_other_builders(self, vamana_index):
        with pytest.raises(ValueError, match="mode='dynamic' requires"):
            vamana_index.add(np.array([[0.5, 0.5]]), mode="dynamic")


class TestDeleteAndCompact:
    def test_deleted_ids_never_returned(self, vamana_index):
        idx = vamana_index
        pts = np.asarray(idx.dataset.points)
        victim = brute_force_knn(pts, np.array([0.5, 0.5]), 1)[0]
        assert idx.delete([victim]) == 1
        assert idx.delete([victim]) == 0  # double delete is a no-op
        assert idx.tombstone_count == 1 and idx.active_count == 199
        r = idx.search(
            np.array([0.5, 0.5]), k=10, params=SearchParams(beam_width=64)
        )
        assert victim not in r.ids[0].tolist()

    def test_unknown_delete_raises(self, vamana_index):
        with pytest.raises(KeyError, match="unknown external id"):
            vamana_index.delete([10**9])
        assert vamana_index.tombstone_count == 0

    def test_tombstone_then_compact_equivalence(self):
        """Tombstoned and compacted indexes answer equivalently: both
        return the exact brute-force NN among survivors (wide beam),
        under the same external ids."""
        rng = np.random.default_rng(21)
        pts = uniform_cube(150, 2, rng)
        idx = ProximityGraphIndex.build(pts, epsilon=0.5, method="gnet", seed=2)
        doomed = rng.choice(150, size=30, replace=False)
        idx.delete(doomed)
        survivors = np.setdiff1d(np.arange(150), doomed)

        queries = rng.uniform(size=(30, 2))
        wide = SearchParams(beam_width=150, seed=3)
        before = idx.search(queries, k=5, params=wide)

        idx.compact()
        assert idx.n == 120 and idx.tombstone_count == 0
        after = idx.search(queries, k=5, params=wide)

        sub = Dataset(EuclideanMetric(), pts[survivors])
        for i, q in enumerate(queries):
            nn = survivors[int(np.argmin(sub.distances_to_query_all(q)))]
            assert before.ids[i, 0] == nn
            assert after.ids[i, 0] == nn
        # distances agree to float precision between the two regimes
        assert np.allclose(before.distances[:, 0], after.distances[:, 0])

    def test_compact_without_tombstones_is_noop(self, vamana_index):
        graph_before = vamana_index.graph
        assert vamana_index.compact() is vamana_index
        assert vamana_index.graph is graph_before

    def test_compact_keeps_external_ids_stable(self, vamana_index):
        idx = vamana_index
        pts = np.asarray(idx.dataset.points)
        idx.delete([0, 1, 2])
        idx.compact()
        assert 0 not in idx.id_map and 3 in idx.id_map
        got, dist = idx.search(pts[50]).top1()
        assert got == 50 and dist == pytest.approx(0.0, abs=1e-12)

    def test_compact_to_fewer_than_two_points_rejected(self):
        pts = uniform_cube(5, 2, np.random.default_rng(0))
        idx = ProximityGraphIndex.build(pts, epsilon=1.0, method="complete")
        idx.delete([0, 1, 2, 3])
        with pytest.raises(ValueError, match="fewer than 2"):
            idx.compact()

    def test_all_deleted_searches_empty(self):
        pts = uniform_cube(20, 2, np.random.default_rng(0))
        idx = ProximityGraphIndex.build(pts, epsilon=1.0, method="complete")
        idx.delete(np.arange(20))
        r = idx.search(pts[:3], k=2)
        assert (r.ids == -1).all()


class TestMutationPersistence:
    def test_v2_round_trips_ids_and_tombstones(self, tmp_path):
        pts = uniform_cube(100, 2, np.random.default_rng(7))
        idx = ProximityGraphIndex.build(
            pts, epsilon=1.0, method="vamana", seed=3,
            ids=np.arange(500, 600),
        )
        idx.add(np.random.default_rng(8).uniform(size=(10, 2)))
        idx.delete([510, 511, 600])
        path = idx.save(tmp_path / "mut.npz")
        loaded = ProximityGraphIndex.load(path)

        assert loaded.id_map.externals.tolist() == idx.id_map.externals.tolist()
        assert loaded.tombstone_count == 3 and loaded.active_count == 107
        queries = np.random.default_rng(9).uniform(size=(15, 2))
        p = SearchParams(beam_width=32, seed=1)
        a, b = idx.search(queries, k=5, params=p), loaded.search(queries, k=5, params=p)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)
        # compact() works after reload: builder options were persisted
        loaded.compact()
        assert loaded.n == 107 and 510 not in loaded.id_map

    def test_v1_files_still_load(self, tmp_path):
        """Backward compatibility: a v1 file (no id/tombstone arrays)
        loads with the identity map and nothing deleted."""
        pts = uniform_cube(60, 2, np.random.default_rng(1))
        idx = ProximityGraphIndex.build(pts, epsilon=1.0, method="gnet", seed=4)
        path = idx.save(tmp_path / "v2.npz")

        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        header = json.loads(bytes(payload["header"].tobytes()).decode())
        assert header["format_version"] == FORMAT_VERSION == 4
        header["format_version"] = 1
        del header["options"]
        del header["storage"]
        del payload["external_ids"], payload["tombstones"]
        payload["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(tmp_path / "v1.npz", **payload)

        loaded = ProximityGraphIndex.load(tmp_path / "v1.npz")
        assert loaded.id_map.is_identity() and loaded.tombstone_count == 0
        assert loaded.built.options == {}
        queries = np.random.default_rng(2).uniform(size=(10, 2))
        p = SearchParams(seed=0)
        a, b = idx.search(queries, params=p), loaded.search(queries, params=p)
        assert np.array_equal(a.ids, b.ids)
        # and the v1-loaded index is fully mutable going forward
        loaded.delete([5])
        loaded.add(np.array([[0.9, 0.9]]))
        assert loaded.n == 61 and loaded.tombstone_count == 1

    def test_save_after_dynamic_add_round_trips(self, tmp_path):
        # A pure grid keeps every pairwise distance at or above the
        # normalized minimum, so the added half can never be rejected.
        grid = np.stack(np.meshgrid(np.arange(10), np.arange(10)), -1)
        pts = grid.reshape(-1, 2).astype(float)
        idx = ProximityGraphIndex.build(pts[:80], epsilon=1.0, method="gnet")
        idx.add(pts[80:])
        path = idx.save(tmp_path / "dyn.npz")
        loaded = ProximityGraphIndex.load(path)
        assert loaded.n == 100 and loaded.built.guaranteed
        q = pts[90]
        assert loaded.search(q).top1() == idx.search(q).top1()
