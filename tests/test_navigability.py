"""Tests for the navigability oracle and Fact 2.1's two directions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import build_complete_graph, build_knn_digraph
from repro.graphs import (
    assert_navigable,
    check_navigability_for_query,
    find_violations,
    greedy,
    greedy_matches_navigability,
)
from repro.metrics import Dataset, EuclideanMetric


@pytest.fixture
def two_clusters(rng):
    """Two tight, well-separated clusters — the classic trap for k-NN
    digraphs: all of a point's k nearest neighbors stay in its own
    cluster, so greedy can never cross."""
    a = rng.normal(0.0, 0.05, size=(20, 2))
    b = rng.normal(0.0, 0.05, size=(20, 2)) + np.array([10.0, 0.0])
    return Dataset(EuclideanMetric(), np.vstack([a, b]))


class TestCompleteGraphIsNavigable:
    def test_no_violations_any_epsilon(self, two_clusters, rng):
        g = build_complete_graph(two_clusters)
        queries = [rng.uniform(-2, 12, size=2) for _ in range(25)]
        for eps in [0.01, 0.5, 1.0]:
            assert find_violations(g, two_clusters, queries, eps, stop_at=None) == []

    def test_assert_navigable_passes(self, two_clusters, rng):
        g = build_complete_graph(two_clusters)
        assert_navigable(g, two_clusters, [rng.uniform(size=2)], 0.5)


class TestKnnDigraphFails:
    def test_violation_found(self, two_clusters):
        g = build_knn_digraph(two_clusters, k=5)
        # Query at the second cluster; vertices of the first are stuck.
        q = np.array([10.0, 0.0])
        violations = check_navigability_for_query(g, two_clusters, q, epsilon=1.0)
        assert violations
        stuck = violations[0]
        assert stuck.vertex < 20  # a first-cluster vertex
        assert stuck.best_out_distance >= stuck.vertex_distance

    def test_fact_2_1_violation_implies_greedy_failure(self, two_clusters):
        """The only-if direction: a navigability violation at (p, q) means
        greedy from p returns a non-(1+eps)-ANN."""
        g = build_knn_digraph(two_clusters, k=5)
        q = np.array([10.0, 0.0])
        v = check_navigability_for_query(g, two_clusters, q, epsilon=1.0)[0]
        result = greedy(g, two_clusters, p_start=v.vertex, q=q)
        nn_dist = two_clusters.distances_to_query_all(q).min()
        assert result.distance > 2.0 * nn_dist

    def test_assert_navigable_raises_with_witness(self, two_clusters):
        g = build_knn_digraph(two_clusters, k=5)
        with pytest.raises(AssertionError, match="not .*navigable"):
            assert_navigable(g, two_clusters, [np.array([10.0, 0.0])], 1.0)


class TestFactTwoOneIfDirection:
    def test_navigable_implies_greedy_succeeds_everywhere(self, two_clusters, rng):
        """If no query violates navigability, greedy from every start
        returns a (1+eps)-ANN — checked on the complete graph."""
        g = build_complete_graph(two_clusters)
        for _ in range(5):
            q = rng.uniform(-2, 12, size=2)
            assert greedy_matches_navigability(g, two_clusters, q, epsilon=0.25)


class TestOracleMechanics:
    def test_stop_at_limits_collection(self, two_clusters):
        g = build_knn_digraph(two_clusters, k=3)
        queries = [np.array([10.0, float(i) * 0.01]) for i in range(5)]
        few = find_violations(g, two_clusters, queries, 1.0, stop_at=2)
        all_of_them = find_violations(g, two_clusters, queries, 1.0, stop_at=None)
        assert 2 <= len(few) <= len(all_of_them)

    def test_epsilon_monotonicity(self, two_clusters, rng):
        """Larger eps can only remove violations (weaker requirement)."""
        g = build_knn_digraph(two_clusters, k=5)
        queries = [rng.uniform(-2, 12, size=2) for _ in range(10)]
        tight = len(find_violations(g, two_clusters, queries, 0.05, stop_at=None))
        loose = len(find_violations(g, two_clusters, queries, 1.0, stop_at=None))
        assert loose <= tight

    def test_data_point_queries(self, two_clusters):
        """Data points as queries: the vertex itself is a 0-distance NN,
        so only *other* stuck vertices can violate."""
        g = build_complete_graph(two_clusters)
        for i in [0, 25]:
            assert (
                check_navigability_for_query(
                    g, two_clusters, two_clusters.points[i], 0.5
                )
                == []
            )
