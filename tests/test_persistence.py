"""Index persistence round-trip tests.

The contract (ISSUE 2): ``save()``/``load()`` must round-trip every
registered builder exactly — a loaded index answers ``query_batch`` /
``query_k_batch`` with identical ids, distances, and stats — and
non-coordinate metrics must refuse to serialize with a clear error
rather than silently pickling.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import ProximityGraphIndex, available_builders
from repro.core.persistence import (
    FORMAT_VERSION,
    metric_from_spec,
    metric_to_spec,
)
from repro.graphs import GNetParameters
from repro.metrics import EuclideanMetric, MetricSpace, ScaledMetric
from repro.metrics.counting import CountingMetric
from repro.metrics.euclidean import ChebyshevMetric, MinkowskiMetric
from repro.metrics.tree_metric import TreeMetric

N = 90


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(6).uniform(size=(N, 2))


@pytest.fixture(scope="module")
def query_batch():
    rng = np.random.default_rng(17)
    return rng.uniform(size=(25, 2)), list(range(25))


def _assert_round_trip(index, loaded, queries, starts):
    assert loaded.graph == index.graph
    assert loaded.graph.frozen
    assert np.array_equal(
        np.asarray(loaded.dataset.points), np.asarray(index.dataset.points)
    )
    assert loaded.scale == index.scale
    assert loaded.built.name == index.built.name
    assert loaded.built.epsilon == index.built.epsilon
    assert loaded.built.guaranteed == index.built.guaranteed
    # Queries are answered identically: same ids, same distances (exact).
    assert loaded.query_batch(queries, starts=starts) == index.query_batch(
        queries, starts=starts
    )
    assert loaded.query_k_batch(queries, k=5, starts=starts) == index.query_k_batch(
        queries, k=5, starts=starts
    )
    assert loaded.stats() == index.stats()


class TestRoundTrip:
    @pytest.mark.parametrize("method", available_builders())
    def test_every_registered_builder(self, method, points, query_batch, tmp_path):
        queries, starts = query_batch
        index = ProximityGraphIndex.build(points, epsilon=1.0, method=method, seed=3)
        path = tmp_path / f"{method}.npz"
        index.save(path)
        loaded = ProximityGraphIndex.load(path)
        _assert_round_trip(index, loaded, queries, starts)

    def test_frozen_csr_graph(self, points, query_batch, tmp_path):
        queries, starts = query_batch
        index = ProximityGraphIndex.build(points, epsilon=1.0, method="vamana", seed=3)
        index.graph.freeze()
        assert index.graph.frozen
        index.save(tmp_path / "frozen.npz")
        loaded = ProximityGraphIndex.load(tmp_path / "frozen.npz")
        _assert_round_trip(index, loaded, queries, starts)

    def test_thawed_then_refrozen_graph(self, points, query_batch, tmp_path):
        queries, starts = query_batch
        index = ProximityGraphIndex.build(points, epsilon=1.0, method="vamana", seed=3)
        index.graph.thaw()
        assert not index.graph.frozen
        # save() freezes through csr(); thaw -> freeze must be lossless.
        index.save(tmp_path / "thawed.npz")
        index.graph.thaw()
        index.graph.freeze()
        loaded = ProximityGraphIndex.load(tmp_path / "thawed.npz")
        _assert_round_trip(index, loaded, queries, starts)

    def test_second_generation_round_trip(self, points, query_batch, tmp_path):
        """save -> load -> save -> load is stable."""
        queries, starts = query_batch
        index = ProximityGraphIndex.build(points, epsilon=1.0, method="gnet", seed=3)
        index.save(tmp_path / "gen1.npz")
        gen1 = ProximityGraphIndex.load(tmp_path / "gen1.npz")
        gen1.save(tmp_path / "gen2.npz")
        gen2 = ProximityGraphIndex.load(tmp_path / "gen2.npz")
        _assert_round_trip(gen1, gen2, queries, starts)

    def test_gnet_params_rehydrated(self, points, tmp_path):
        """GNetParameters survives as a real object so stats() keeps its
        theory columns (h, phi) after a reload."""
        index = ProximityGraphIndex.build(points, epsilon=1.0, method="gnet", seed=3)
        index.save(tmp_path / "g.npz")
        loaded = ProximityGraphIndex.load(tmp_path / "g.npz")
        assert isinstance(loaded.built.meta["params"], GNetParameters)
        assert loaded.built.meta["params"] == index.built.meta["params"]
        assert "h" in loaded.stats() and "phi" in loaded.stats()

    def test_dropped_meta_recorded(self, points, tmp_path):
        index = ProximityGraphIndex.build(points, epsilon=1.0, method="gnet", seed=3)
        assert "hierarchy" in index.built.meta  # unserializable provenance
        index.save(tmp_path / "g.npz")
        loaded = ProximityGraphIndex.load(tmp_path / "g.npz")
        assert "hierarchy" not in loaded.built.meta
        assert "hierarchy" in loaded.built.meta["meta_dropped"]

    def test_seed_round_trips(self, points, tmp_path):
        index = ProximityGraphIndex.build(points, epsilon=1.0, method="knn", seed=11)
        index.save(tmp_path / "k.npz")
        loaded = ProximityGraphIndex.load(tmp_path / "k.npz")
        assert loaded.seed == 11

    def test_unsupported_format_version(self, points, tmp_path):
        index = ProximityGraphIndex.build(points, epsilon=1.0, method="knn", seed=0)
        path = index.save(tmp_path / "k.npz")
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        header = json.loads(bytes(payload["header"].tobytes()).decode())
        # +2: FORMAT_VERSION + 1 is the v5 disk directory layout, which
        # gets its own precise error rather than the generic branch.
        header["format_version"] = FORMAT_VERSION + 2
        payload["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(tmp_path / "future.npz", **payload)
        with pytest.raises(ValueError, match="format version"):
            ProximityGraphIndex.load(tmp_path / "future.npz")


class TestMetricSpecs:
    @pytest.mark.parametrize("metric", [
        EuclideanMetric(),
        ChebyshevMetric(),
        MinkowskiMetric(3.0),
        ScaledMetric(EuclideanMetric(), 2.5),
        ScaledMetric(MinkowskiMetric(1.5), 0.25),
    ])
    def test_spec_round_trip(self, metric):
        spec = metric_to_spec(metric)
        back = metric_from_spec(spec)
        assert type(back) is type(metric)
        a = np.array([0.0, 0.0])
        b = np.array([[3.0, 4.0], [1.0, 1.0]])
        assert np.array_equal(metric.distances(a, b), back.distances(a, b))

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown metric spec"):
            metric_from_spec({"kind": "hyperbolic"})


class TestNonCoordinateMetricsRefuse:
    """Satellite: counting/tree metrics raise a clear NotImplementedError
    from save() instead of silently pickling."""

    def test_tree_metric_message(self, tmp_path):
        leaves = np.arange(32)
        index = ProximityGraphIndex.build(
            leaves, epsilon=1.0, method="gnet",
            metric=TreeMetric(5), normalize=False,
        )
        with pytest.raises(
            NotImplementedError,
            match=r"cannot save an index over TreeMetric: only coordinate "
            r"metrics",
        ):
            index.save(tmp_path / "tree.npz")

    def test_counting_metric_message(self, points, tmp_path):
        index = ProximityGraphIndex.build(
            points, epsilon=1.0, method="knn",
            metric=CountingMetric(EuclideanMetric()), normalize=False,
        )
        with pytest.raises(
            NotImplementedError, match="CountingMetric.*coordinate metrics"
        ):
            index.save(tmp_path / "cnt.npz")

    def test_scaled_wrapper_does_not_mask_inner(self, tmp_path):
        """Normalization wraps the metric in ScaledMetric; the inner
        non-coordinate metric must still be detected and refused."""
        leaves = np.arange(32)
        index = ProximityGraphIndex.build(
            leaves, epsilon=1.0, method="gnet",
            metric=TreeMetric(5), normalize=True,
        )
        with pytest.raises(NotImplementedError, match="TreeMetric"):
            index.save(tmp_path / "tree.npz")

    def test_custom_metric_rejected(self, tmp_path):
        class WeirdMetric(MetricSpace):
            def distance(self, a, b):
                return abs(float(np.asarray(a).ravel()[0]) - float(np.asarray(b).ravel()[0]))

        index = ProximityGraphIndex.build(
            np.arange(16).astype(np.float64)[:, None] * 2.0,
            epsilon=1.0, method="knn", metric=WeirdMetric(), normalize=False,
        )
        with pytest.raises(NotImplementedError, match="WeirdMetric"):
            index.save(tmp_path / "weird.npz")

    def test_no_file_left_behind(self, tmp_path):
        leaves = np.arange(32)
        index = ProximityGraphIndex.build(
            leaves, epsilon=1.0, method="gnet",
            metric=TreeMetric(5), normalize=False,
        )
        target = tmp_path / "tree.npz"
        with pytest.raises(NotImplementedError):
            index.save(target)
        assert not target.exists()
