"""Format v5: the disk directory and its mmap-backed two-tier index.

The contract (PR 9 tentpole): ``save(format="disk")`` writes a
directory of raw binary array files committed by a trailing
``header.json``; ``load(path)`` lazily attaches them read-only via
``np.memmap`` (``mmap=False`` reads eagerly) and wraps the store in a
:class:`~repro.storage.disk.DiskTierStore` so graph traversal touches
only the hot tier (codes + CSR) while ``vectors.bin`` — the cold tier
— is paged in solely by the exact-rerank gather.  Everything must be
bit-identical to the in-RAM index; mutation is copy-on-write (the
mapping is never written through); torn or mislabeled directories fail
loudly with the violated invariant named.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    ProximityGraphIndex,
    SearchParams,
    ShardedIndex,
    load_any,
)
from repro.accel.dispatch import _plan
from repro.core.integrity import check_disk_layout
from repro.core.persistence import (
    DISK_FORMAT_VERSION,
    DISK_HEADER_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    load_index,
    load_sharded_index,
    save_index,
)
from repro.serve.state import IndexHolder
from repro.storage.disk import DiskTierStore, advise_memmap
from repro.workloads import uniform_cube

N = 110
D = 3
STORAGES = ["flat", "sq8", "pq"]


def _build(storage: str = "sq8", n: int = N, seed: int = 3) -> ProximityGraphIndex:
    pts = uniform_cube(n, D, np.random.default_rng(seed))
    return ProximityGraphIndex.build(
        pts, epsilon=1.0, method="vamana", seed=seed, storage=storage
    )


@pytest.fixture(scope="module")
def queries() -> np.ndarray:
    return np.random.default_rng(7).uniform(size=(16, D))


def _search(index, queries, k: int = 5):
    return index.search(queries, k=k, params=SearchParams(seed=0))


def _assert_identical(a, b) -> None:
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.distances, b.distances)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


class TestV5RoundTrip:
    @pytest.mark.parametrize("mmap", [True, False], ids=["mmap", "eager"])
    @pytest.mark.parametrize("storage", STORAGES)
    def test_bit_identical_search(self, storage, mmap, queries, tmp_path):
        index = _build(storage)
        want = _search(index, queries)
        out = index.save(tmp_path / "idx", format="disk")
        loaded = load_index(out, mmap=mmap)
        assert isinstance(loaded.store, DiskTierStore)
        assert loaded.store.kind == storage
        _assert_identical(want, _search(loaded, queries))

    def test_mmap_is_the_default_and_lazily_attaches(self, tmp_path):
        out = _build("sq8").save(tmp_path / "idx", format="disk")
        loaded = ProximityGraphIndex.load(out)  # mmap=None -> attach
        # Cold tier and hot-tier codes are mapped, not read: the codes
        # come back as a zero-copy view over the mapping (the store's
        # ``np.asarray`` strips the subclass but not the backing file).
        assert isinstance(loaded.dataset.points, np.memmap)
        assert isinstance(loaded.store.codes.base, np.memmap)
        assert not loaded.dataset.points.flags.writeable
        # Mutable state is always eagerly owned: delete() writes the
        # tombstone mask in place and must never touch the mapping.
        assert not isinstance(loaded._tombstones, np.memmap)
        assert not isinstance(loaded.id_map.externals, np.memmap)

    def test_eager_load_owns_its_arrays(self, tmp_path):
        out = _build("sq8").save(tmp_path / "idx", format="disk")
        loaded = load_index(out, mmap=False)
        assert not isinstance(loaded.dataset.points, np.memmap)
        assert not isinstance(loaded.store.codes, np.memmap)

    def test_layout_on_disk(self, tmp_path):
        out = _build("sq8").save(tmp_path / "idx", format="disk")
        names = sorted(p.name for p in out.iterdir())
        assert names == [
            "codes.bin", "csr_offsets.bin", "csr_targets.bin",
            "external_ids.bin", "header.json", "store_minv.bin",
            "store_scale.bin", "tombstones.bin", "vectors.bin",
        ]
        header = json.loads((out / DISK_HEADER_NAME).read_text())
        assert header["format_version"] == DISK_FORMAT_VERSION == 5
        assert header["kind"] == "disk-index"
        # Every declared array is exactly dtype * prod(shape) bytes.
        for entry in header["arrays"].values():
            expected = np.dtype(entry["dtype"]).itemsize * int(
                np.prod(entry["shape"])
            )
            assert (out / entry["file"]).stat().st_size == expected

    def test_second_generation_disk_round_trip(self, queries, tmp_path):
        index = _build("pq")
        index.save(tmp_path / "gen1", format="disk")
        gen1 = load_any(tmp_path / "gen1")
        gen1.save(tmp_path / "gen2", format="disk")
        gen2 = load_any(tmp_path / "gen2")
        _assert_identical(_search(gen1, queries), _search(gen2, queries))

    def test_migration_v5_to_v4_and_back(self, queries, tmp_path):
        """The chain extends both ways: a mapped v5 index re-saves as a
        v4 .npz, and that .npz re-saves as v5 — answers survive."""
        index = _build("sq8")
        want = _search(index, queries)
        index.save(tmp_path / "v5", format="disk")
        mapped = load_any(tmp_path / "v5")
        back = mapped.save(tmp_path / "flat.npz")  # defaults to npz v4
        with np.load(back) as data:
            header = json.loads(bytes(data["header"].tobytes()).decode())
        assert header["format_version"] == FORMAT_VERSION == 4
        again = load_any(back)
        again.save(tmp_path / "v5b", format="disk")
        final = load_any(tmp_path / "v5b")
        _assert_identical(want, _search(final, queries))

    def test_mutation_state_round_trips(self, queries, tmp_path):
        index = _build("sq8")
        index.delete([1, 2, 3])
        added = index.add(np.random.default_rng(9).uniform(size=(4, D)))
        want = _search(index, queries)
        index.save(tmp_path / "idx", format="disk")
        loaded = load_any(tmp_path / "idx")
        _assert_identical(want, _search(loaded, queries))
        assert loaded.tombstone_count == 3
        more = loaded.add(np.random.default_rng(10).uniform(size=(1, D)))
        assert int(more[0]) == int(added.max()) + 1


class TestUncompressedNpz:
    """Satellite: ``compress=False`` writes a plain (uncompressed) v4
    .npz that loads identically — the fast-save option for large
    indexes staying on the npz path."""

    def test_round_trip_and_size(self, queries, tmp_path):
        index = _build("sq8")
        fast = save_index(index, tmp_path / "fast.npz", compress=False)
        small = save_index(index, tmp_path / "small.npz", compress=True)
        assert fast.stat().st_size >= small.stat().st_size
        _assert_identical(
            _search(load_index(fast), queries),
            _search(load_index(small), queries),
        )

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown save format"):
            save_index(_build("flat"), tmp_path / "x", format="tar")


# ----------------------------------------------------------------------
# Precise wrong-loader errors (satellite: SUPPORTED_VERSIONS handling)
# ----------------------------------------------------------------------


class TestPreciseLoaderErrors:
    def _relabel(self, path, version: int) -> None:
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        header = json.loads(bytes(payload["header"].tobytes()).decode())
        header["format_version"] = version
        payload["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **payload)

    def test_v3_labeled_flat_file_names_the_sharded_loader(self, tmp_path):
        """A flat file can never carry v3; the error must say so and
        name the loader that handles manifest directories."""
        path = _build("flat").save(tmp_path / "bad.npz")
        self._relabel(path, 3)
        with pytest.raises(
            ValueError,
            match=r"format version 3.*manifest-directory.*load_sharded_index",
        ):
            load_index(path)

    def test_v5_labeled_flat_file_names_the_disk_layout(self, tmp_path):
        path = _build("flat").save(tmp_path / "bad.npz")
        self._relabel(path, 5)
        with pytest.raises(
            ValueError, match=r"format version 5.*disk directory layout"
        ):
            load_index(path)

    def test_manifest_dir_fed_to_load_index(self, tmp_path):
        pts = uniform_cube(60, D, np.random.default_rng(1))
        out = ShardedIndex.build(pts, method="vamana", shards=2, seed=1).save(
            tmp_path / "sharded"
        )
        with pytest.raises(
            ValueError, match=r"manifest directory.*load_sharded_index"
        ):
            load_index(out)

    def test_mmap_on_npz_file_is_an_error(self, tmp_path):
        path = _build("flat").save(tmp_path / "flat.npz")
        with pytest.raises(
            ValueError, match=r"zip members cannot be memory-mapped"
        ):
            load_index(path, mmap=True)

    def test_directory_without_either_marker(self, tmp_path):
        (tmp_path / "junk").mkdir()
        with pytest.raises(
            ValueError, match=rf"{DISK_HEADER_NAME}.*{MANIFEST_NAME}"
        ):
            load_index(tmp_path / "junk")


# ----------------------------------------------------------------------
# Torn / mislabeled directories fail loudly (satellite: mmap robustness)
# ----------------------------------------------------------------------


class TestDiskRobustness:
    @pytest.fixture
    def saved(self, tmp_path):
        return _build("sq8").save(tmp_path / "idx", format="disk")

    def test_clean_directory_validates(self, saved):
        assert check_disk_layout(saved) == []

    def test_truncated_vectors(self, saved):
        data = (saved / "vectors.bin").read_bytes()
        (saved / "vectors.bin").write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="disk-array-size"):
            load_any(saved)
        assert any("disk-array-size" in v for v in check_disk_layout(saved))

    def test_missing_tier_file(self, saved):
        (saved / "codes.bin").unlink()
        with pytest.raises(ValueError, match="disk-file-missing"):
            load_any(saved)
        assert any("disk-file-missing" in v for v in check_disk_layout(saved))

    def test_header_row_count_mismatch(self, saved):
        header = json.loads((saved / DISK_HEADER_NAME).read_text())
        # Shrinking n leaves every per-point shape (still truthful about
        # its file) disagreeing with the header's row count.
        header["n"] = int(header["n"]) - 1
        (saved / DISK_HEADER_NAME).write_text(json.dumps(header))
        with pytest.raises(ValueError, match="disk-array-rows"):
            load_any(saved)
        assert any("disk-array-rows" in v for v in check_disk_layout(saved))

    def test_interrupted_save_has_no_commit_marker(self, saved):
        """header.json is written last; a save that died mid-way leaves
        a directory the loader refuses by name."""
        (saved / DISK_HEADER_NAME).unlink()
        with pytest.raises(ValueError, match=DISK_HEADER_NAME):
            load_index(saved)
        violations = check_disk_layout(saved)
        assert len(violations) == 1 and "disk-header-missing" in violations[0]

    def test_corrupt_header_json(self, saved):
        (saved / DISK_HEADER_NAME).write_text("{not json")
        with pytest.raises(ValueError, match="corrupt disk-index header"):
            load_any(saved)
        assert any(
            "disk-header-unreadable" in v for v in check_disk_layout(saved)
        )

    def test_wrong_header_version(self, saved):
        header = json.loads((saved / DISK_HEADER_NAME).read_text())
        header["format_version"] = 99
        (saved / DISK_HEADER_NAME).write_text(json.dumps(header))
        with pytest.raises(ValueError, match="not a v5 disk-index header"):
            load_any(saved)
        assert any(
            "disk-header-version" in v for v in check_disk_layout(saved)
        )

    def test_required_array_dropped_from_manifest(self, saved):
        header = json.loads((saved / DISK_HEADER_NAME).read_text())
        del header["arrays"]["external_ids"]
        (saved / DISK_HEADER_NAME).write_text(json.dumps(header))
        with pytest.raises(ValueError, match="disk-array-missing"):
            load_any(saved)
        assert any(
            "disk-array-missing" in v for v in check_disk_layout(saved)
        )

    def test_unwritable_target_named_at_save_time(self, tmp_path):
        # A file where a path component should be a directory trips the
        # same OSError funnel as a read-only filesystem, and does so
        # even when the suite runs as root (chmod is advisory there).
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        with pytest.raises(ValueError, match="disk-dir-unwritable"):
            _build("flat").save(blocker / "idx", format="disk")

    def test_save_refuses_existing_file_target(self, tmp_path):
        target = tmp_path / "taken"
        target.write_text("already a file")
        with pytest.raises(ValueError, match="not a directory"):
            _build("flat").save(target, format="disk")


# ----------------------------------------------------------------------
# DiskTierStore behavior
# ----------------------------------------------------------------------


class TestDiskTierStore:
    @pytest.fixture
    def mapped(self, tmp_path):
        out = _build("sq8").save(tmp_path / "idx", format="disk")
        return load_any(out)

    def test_rejects_nesting(self, mapped):
        with pytest.raises(ValueError, match="cannot wrap another"):
            DiskTierStore(mapped.store, mapped.dataset.points)

    def test_rejects_row_count_mismatch(self, mapped):
        with pytest.raises(ValueError, match="cold tier holds"):
            DiskTierStore(mapped.store.inner, mapped.dataset.points[:-1])

    def test_rerank_gather_is_bit_identical(self, mapped, queries):
        """The ascending-offset gather must scatter distances back in
        candidate order, bit-identical to the direct fancy-index."""
        cand = np.array([17, 3, 99, 3, 42, 0], dtype=np.intp)  # unsorted, dup
        for q in queries[:4]:
            got = mapped.store.rerank_distances(mapped.dataset, q, cand)
            want = mapped.dataset.distances_to_query(q, cand)
            assert np.array_equal(got, want)

    def test_detach_is_a_noop(self, mapped):
        assert mapped.store.detach() is mapped.store

    def test_clone_shares_the_mapping(self, mapped):
        clone = mapped.store.clone()
        assert clone is not mapped.store
        assert clone.inner is not mapped.store.inner
        assert np.shares_memory(clone.vectors, mapped.store.vectors)

    def test_summary_reports_disk_backing(self, mapped):
        assert mapped.store.summary()["disk_backed"] is True
        assert "disk_backed" not in mapped.store.inner.summary()

    def test_advise_memmap_hints(self, mapped):
        arr = mapped.dataset.points
        assert isinstance(arr, np.memmap)
        # On Linux the mmap handle exposes madvise; a plain ndarray and
        # an unknown pattern are silent no-ops either way.
        assert advise_memmap(np.zeros(4), "random") is False
        assert advise_memmap(arr, "no-such-pattern") is False
        assert advise_memmap(arr, "random") in (True, False)


class TestColdTierIsolation:
    def test_traversal_never_reads_the_vectors(self, queries, tmp_path):
        """The tripwire for the whole tier split: poison ``dataset.points``
        (traversal's only route to full-precision rows outside the
        store) and keep the cold tier only on ``store.vectors`` — a
        quantized index must still answer bit-identically, proving
        traversal runs on codes + CSR and exact rerank goes through
        :meth:`DiskTierStore.rerank_distances` alone."""
        index = _build("sq8")
        want = _search(index, queries)
        out = index.save(tmp_path / "idx", format="disk")
        loaded = load_any(out)
        poison = np.full_like(np.asarray(loaded.dataset.points), np.nan)
        loaded.dataset.points = poison
        got = _search(loaded, queries)
        _assert_identical(want, got)
        assert np.all(np.isfinite(got.distances[got.ids >= 0]))


class TestAccelZeroCopy:
    """Pinned for :mod:`repro.accel.dispatch`: the planner's exports
    adopt mmap-backed arrays without copying, so compiled traversal
    reads straight from the page cache."""

    def test_sq8_codes_pass_through(self, queries, tmp_path):
        out = _build("sq8").save(tmp_path / "idx", format="disk")
        loaded = load_any(out)
        plan = _plan(loaded.dataset, loaded.store, np.asarray(queries))
        assert isinstance(loaded.store.codes.base, np.memmap)
        assert np.shares_memory(plan.codes, loaded.store.codes)

    def test_flat_points_pass_through(self, queries, tmp_path):
        out = _build("flat").save(tmp_path / "idx", format="disk")
        loaded = load_any(out)
        plan = _plan(loaded.dataset, loaded.store, np.asarray(queries))
        assert np.shares_memory(plan.data, loaded.dataset.points)


# ----------------------------------------------------------------------
# Copy-on-write mutation + serving over a mapped index
# ----------------------------------------------------------------------


class TestCopyOnWriteMutation:
    def test_add_materializes_and_never_writes_the_mapping(
        self, queries, tmp_path
    ):
        out = _build("sq8").save(tmp_path / "idx", format="disk")
        before = (out / "vectors.bin").read_bytes()
        loaded = load_any(out)
        assert isinstance(loaded.store, DiskTierStore)
        new_ids = loaded.add(np.random.default_rng(11).uniform(size=(3, D)))
        assert len(new_ids) == 3
        # The collection materialized into RAM and the wrapper unwrapped:
        # the cold tier no longer backs the (now grown) point array.
        assert not isinstance(loaded.dataset.points, np.memmap)
        assert not isinstance(loaded.store, DiskTierStore)
        assert loaded.n == N + 3
        # ... and the file on disk is untouched, byte for byte.
        assert (out / "vectors.bin").read_bytes() == before
        assert _search(loaded, queries) is not None

    def test_delete_stays_off_the_mapping(self, tmp_path):
        out = _build("sq8").save(tmp_path / "idx", format="disk")
        before = (out / "tombstones.bin").read_bytes()
        loaded = load_any(out)
        assert loaded.delete([0, 5]) == 2
        assert isinstance(loaded.store, DiskTierStore)  # still mapped
        assert (out / "tombstones.bin").read_bytes() == before

    def test_snapshot_shares_the_mapping(self, queries, tmp_path):
        out = _build("sq8").save(tmp_path / "idx", format="disk")
        loaded = load_any(out)
        snap = loaded.snapshot()
        assert np.shares_memory(snap.dataset.points, loaded.dataset.points)
        assert np.shares_memory(snap.store.codes, loaded.store.codes)
        _assert_identical(_search(loaded, queries), _search(snap, queries))


class TestServingOverMmap:
    def test_holder_swap_preserves_readers(self, queries, tmp_path):
        """The serving layer's snapshot-swap works unchanged over a
        mapped index: a reader holding the old state keeps bit-identical
        answers across a concurrent ``add``, and the mutation never
        writes through the mapping."""
        out = _build("sq8").save(tmp_path / "idx", format="disk")
        before = (out / "vectors.bin").read_bytes()
        holder = IndexHolder(load_any(out))
        old_index, old_gen = holder.state
        want_old = _search(old_index, queries)
        holder.add(np.random.default_rng(12).uniform(size=(2, D)))
        new_index, new_gen = holder.state
        assert new_gen == old_gen + 1 and new_index is not old_index
        # The retained reader still serves the pre-mutation answers.
        _assert_identical(want_old, _search(old_index, queries))
        assert new_index.n == old_index.n + 2
        assert (out / "vectors.bin").read_bytes() == before


# ----------------------------------------------------------------------
# Sharded indexes save/load v5 shards
# ----------------------------------------------------------------------


class TestShardedDiskFormat:
    @pytest.fixture(scope="class")
    def sharded(self):
        pts = uniform_cube(120, D, np.random.default_rng(4))
        return ShardedIndex.build(
            pts, epsilon=1.0, method="vamana", shards=3, seed=4, storage="sq8"
        )

    def test_round_trip_bit_identical(self, sharded, queries, tmp_path):
        want = sharded.search(queries, k=5)
        out = sharded.save(tmp_path / "idx", format="disk")
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        assert manifest["shard_format"] == "disk"
        assert all(
            (out / name).is_dir() and name.endswith(".disk")
            for name in manifest["shard_files"]
        )
        loaded = load_any(out)
        got = loaded.search(queries, k=5)
        assert np.array_equal(want.ids, got.ids)
        assert np.array_equal(want.distances, got.distances)
        assert all(
            isinstance(s.store, DiskTierStore) for s in loaded.shards
        )

    def test_eager_load(self, sharded, queries, tmp_path):
        out = sharded.save(tmp_path / "idx", format="disk")
        loaded = load_sharded_index(out, mmap=False)
        got = loaded.search(queries, k=5)
        want = sharded.search(queries, k=5)
        assert np.array_equal(want.ids, got.ids)
        assert not isinstance(loaded.shards[0].dataset.points, np.memmap)

    def test_resave_npz_cleans_stale_disk_shards(self, sharded, tmp_path):
        out = sharded.save(tmp_path / "reused", format="disk")
        assert list(out.glob("shard-*.disk"))
        sharded.save(out)  # back to npz shards in the same directory
        assert not list(out.glob("shard-*.disk"))
        assert len(list(out.glob("shard-*.npz"))) == 3
        assert load_any(out).n == sharded.n

    def test_mutation_on_mapped_shards(self, sharded, tmp_path):
        out = sharded.save(tmp_path / "idx", format="disk")
        loaded = load_any(out)
        loaded.delete([1, 2])
        new = loaded.add(np.random.default_rng(13).uniform(size=(2, D)))
        assert loaded.tombstone_count == 2 and len(new) == 2
