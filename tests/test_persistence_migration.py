"""The persistence migration chain: v1 -> v2 -> v4 (+ v3 directories).

v1 (graph + points only) and v2 (id map + tombstones + options) flat
files must still load — they predate the storage layer and come back
with flat (exact) storage; a loaded v1/v2 index re-saves as v4 (which
adds the vector-store spec, and codes/codebooks when quantized); any
flat file can be adopted as a shard of a v3 manifest directory; and
search answers survive the whole chain bit-for-bit.  Partial or
corrupt v3 directories must fail loudly with an error naming the
problem — never load quietly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import ProximityGraphIndex, SearchParams, ShardedIndex, load_any
from repro.core.persistence import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    SHARDED_FORMAT_VERSION,
    load_index,
    load_sharded_index,
)
from repro.workloads import uniform_cube


def _write_v1(idx: ProximityGraphIndex, path) -> None:
    """Rewrite a freshly saved file in the v1 layout (no id map, no
    tombstones, no options, no storage) — the pre-mutable on-disk form."""
    saved = idx.save(path)
    with np.load(saved) as data:
        payload = {k: data[k] for k in data.files}
    header = json.loads(bytes(payload["header"].tobytes()).decode())
    header["format_version"] = 1
    del header["options"]
    del header["storage"]
    del payload["external_ids"], payload["tombstones"]
    payload["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez(saved, **payload)


def _header_version(path) -> int:
    with np.load(path) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode())
    return header["format_version"]


@pytest.fixture
def flat_index() -> ProximityGraphIndex:
    pts = uniform_cube(80, 2, np.random.default_rng(5))
    return ProximityGraphIndex.build(pts, epsilon=1.0, method="vamana", seed=5)


@pytest.fixture
def queries() -> np.ndarray:
    return np.random.default_rng(6).uniform(size=(12, 2))


class TestMigrationChain:
    def test_v1_resaves_as_current(self, flat_index, queries, tmp_path):
        _write_v1(flat_index, tmp_path / "old.npz")
        loaded_v1 = load_index(tmp_path / "old.npz")
        assert loaded_v1.store.kind == "flat"  # pre-storage files are flat
        resaved = loaded_v1.save(tmp_path / "new.npz")
        assert _header_version(resaved) == FORMAT_VERSION == 4
        loaded_v2 = load_index(resaved)
        p = SearchParams(seed=0)
        a = flat_index.search(queries, k=5, params=p)
        b = loaded_v2.search(queries, k=5, params=p)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)

    def test_v2_still_loads_as_flat_storage(self, flat_index, queries, tmp_path):
        """A v2-era file (id map + tombstones, but no storage layer)
        loads with flat storage and identical answers."""
        saved = flat_index.save(tmp_path / "v2.npz")
        with np.load(saved) as data:
            payload = {k: data[k] for k in data.files}
        header = json.loads(bytes(payload["header"].tobytes()).decode())
        header["format_version"] = 2
        del header["storage"]
        payload["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(saved, **payload)
        loaded = load_index(saved)
        assert loaded.store.kind == "flat"
        p = SearchParams(seed=0)
        a = flat_index.search(queries, k=5, params=p)
        b = loaded.search(queries, k=5, params=p)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)

    def test_v2_shard_adopts_into_v3(self, flat_index, queries, tmp_path):
        """A flat v2 file becomes the single shard of a v3 directory."""
        saved = flat_index.save(tmp_path / "flat.npz")
        adopted = ShardedIndex([load_index(saved)], seed=flat_index.seed)
        out = adopted.save(tmp_path / "sharded")
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == SHARDED_FORMAT_VERSION == 3
        loaded = load_any(out)
        assert isinstance(loaded, ShardedIndex)
        p = SearchParams(seed=0)
        a = flat_index.search(queries, k=5, params=p)
        b = loaded.search(queries, k=5, params=p)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)

    def test_full_chain_v1_to_v3(self, flat_index, queries, tmp_path):
        p = SearchParams(seed=0)
        want = flat_index.search(queries, k=5, params=p)
        _write_v1(flat_index, tmp_path / "v1.npz")
        step_v2 = load_any(tmp_path / "v1.npz")
        step_v2.save(tmp_path / "v2.npz")
        sharded = ShardedIndex([load_any(tmp_path / "v2.npz")])
        sharded.save(tmp_path / "v3")
        final = load_any(tmp_path / "v3")
        got = final.search(queries, k=5, params=p)
        assert np.array_equal(want.ids, got.ids)
        assert np.array_equal(want.distances, got.distances)
        # the chain's end is fully mutable: stable ids keep working
        final.delete([3])
        new = final.add(np.array([[0.4, 0.6]]))
        assert final.tombstone_count == 1 and int(new[0]) == 80

    def test_v3_round_trip_preserves_mutation_state(self, tmp_path, queries):
        pts = uniform_cube(90, 2, np.random.default_rng(8))
        sharded = ShardedIndex.build(pts, method="vamana", shards=3, seed=8)
        sharded.delete([1, 2, 3])
        added = sharded.add(np.random.default_rng(9).uniform(size=(5, 2)))
        want = sharded.search(queries, k=5)
        out = sharded.save(tmp_path / "idx")
        loaded = load_any(out)
        got = loaded.search(queries, k=5)
        assert np.array_equal(want.ids, got.ids)
        assert np.array_equal(want.distances, got.distances)
        assert loaded.tombstone_count == 3
        # fresh ids continue past the highest ever assigned
        more = loaded.add(np.random.default_rng(10).uniform(size=(1, 2)))
        assert int(more[0]) == int(added.max()) + 1


class TestCorruptShardedDirectories:
    @pytest.fixture
    def saved(self, tmp_path):
        pts = uniform_cube(60, 2, np.random.default_rng(1))
        sharded = ShardedIndex.build(pts, method="vamana", shards=2, seed=1)
        return sharded.save(tmp_path / "idx")

    def test_missing_manifest(self, saved):
        (saved / MANIFEST_NAME).unlink()
        with pytest.raises(ValueError, match="no manifest.json found"):
            load_sharded_index(saved)

    def test_corrupt_manifest_json(self, saved):
        (saved / MANIFEST_NAME).write_text("{this is not json")
        with pytest.raises(ValueError, match="corrupt sharded-index manifest"):
            load_any(saved)

    def test_wrong_kind(self, saved):
        (saved / MANIFEST_NAME).write_text(json.dumps({"format_version": 3}))
        with pytest.raises(ValueError, match="not a sharded-index manifest"):
            load_any(saved)

    def test_unsupported_version(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["format_version"] = 99
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported sharded format version 99"):
            load_any(saved)

    def test_shard_count_mismatch(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["shards"] = 5
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="declares 5 shards but lists 2"):
            load_any(saved)

    def test_missing_shard_file(self, saved):
        (saved / "shard-001.npz").unlink()
        with pytest.raises(
            ValueError, match="incomplete: missing shard file shard-001.npz"
        ):
            load_any(saved)

    def test_load_index_rejects_directory(self, saved):
        # The error must name the right loader, not just refuse.
        with pytest.raises(
            ValueError, match=r"manifest directory.*load_sharded_index"
        ):
            load_index(saved)

    def test_resave_removes_stale_shard_files(self, saved, tmp_path):
        """Saving a narrower index into a reused directory must not
        leave undeclared shard files behind."""
        pts = uniform_cube(40, 2, np.random.default_rng(2))
        wide = ShardedIndex.build(pts, method="vamana", shards=4, seed=2)
        out = wide.save(tmp_path / "reused")
        assert len(list(out.glob("shard-*.npz"))) == 4
        narrow = ShardedIndex.build(pts, method="vamana", shards=2, seed=2)
        narrow.save(out)
        assert sorted(p.name for p in out.glob("shard-*.npz")) == [
            "shard-000.npz",
            "shard-001.npz",
        ]
        loaded = load_any(out)
        assert loaded.n_shards == 2 and loaded.n == 40
