"""Deeper property-based tests: stateful cover-tree fuzzing, randomized
builder-equivalence, randomized adversarial-metric axioms, and graph
persistence round-trips under hypothesis control."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.anns import BruteForceANN, CoverTree
from repro.graphs import ProximityGraph, build_theta_graph
from repro.metrics import BlockAdversarialMetric, Dataset, EuclideanMetric


# ----------------------------------------------------------------------
# Stateful fuzzing: the cover tree must agree with brute force under any
# interleaving of inserts, deletes, and queries.
# ----------------------------------------------------------------------

_POOL_RNG = np.random.default_rng(424242)
_POOL = _POOL_RNG.uniform(0, 100, size=(64, 2))
_DATASET = Dataset(EuclideanMetric(), _POOL)


class CoverTreeMachine(RuleBasedStateMachine):
    """Drive a CoverTree and a BruteForceANN with the same operations and
    compare every query answer."""

    def __init__(self):
        super().__init__()
        self.tree = CoverTree(_DATASET)
        self.oracle = BruteForceANN(_DATASET)
        self.stored: set[int] = set()

    @rule(pid=st.integers(0, 63))
    def insert(self, pid):
        if pid in self.stored:
            with pytest.raises(ValueError):
                self.tree.insert(pid)
            return
        self.tree.insert(pid)
        self.oracle.insert(pid)
        self.stored.add(pid)

    @precondition(lambda self: self.stored)
    @rule(data=st.data())
    def delete(self, data):
        pid = data.draw(st.sampled_from(sorted(self.stored)))
        self.tree.delete(pid)
        self.oracle.delete(pid)
        self.stored.remove(pid)

    @rule(x=st.floats(-20, 120), y=st.floats(-20, 120))
    def query_nearest(self, x, y):
        q = np.array([x, y])
        got, want = self.tree.nearest(q), self.oracle.nearest(q)
        if want is None:
            assert got is None
        else:
            assert got is not None
            assert got[1] == pytest.approx(want[1])

    @rule(x=st.floats(0, 100), y=st.floats(0, 100), k=st.integers(1, 6))
    def query_knn(self, x, y, k):
        q = np.array([x, y])
        got = [round(d, 9) for _, d in self.tree.knn(q, k)]
        want = [round(d, 9) for _, d in self.oracle.knn(q, k)]
        assert got == want

    @rule(x=st.floats(0, 100), y=st.floats(0, 100), r=st.floats(1, 60))
    def query_range(self, x, y, r):
        q = np.array([x, y])
        got = {i for i, _ in self.tree.range_search(q, r)}
        want = {i for i, _ in self.oracle.range_search(q, r)}
        assert got == want

    @invariant()
    def sizes_agree(self):
        assert len(self.tree) == len(self.oracle) == len(self.stored)


CoverTreeMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestCoverTreeStateful = CoverTreeMachine.TestCase


# ----------------------------------------------------------------------
# Randomized builder equivalence and metric axioms
# ----------------------------------------------------------------------


class TestThetaBuilderEquivalence:
    @given(
        st.integers(0, 10_000),
        st.integers(15, 45),
        st.sampled_from([0.2, 0.45, 0.8]),
    )
    @settings(max_examples=15, deadline=None)
    def test_sweep_equals_vectorized(self, seed, n, theta):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 50, size=(n, 2))
        ds = Dataset(EuclideanMetric(), pts)
        a = build_theta_graph(ds, theta, method="sweep")
        b = build_theta_graph(ds, theta, method="vectorized", cones=a.cones)
        assert a.graph == b.graph


class TestAdversarialMetricRandomized:
    @given(
        st.integers(2, 4),
        st.integers(1, 3),
        st.integers(1, 2),
        st.integers(0, 10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_committed_metric_axioms(self, s, t, d, seed):
        rng = np.random.default_rng(seed)
        base = BlockAdversarialMetric(s, t, d)
        p_star = int(rng.integers(base.n))
        metric = BlockAdversarialMetric(s, t, d, p_star=p_star)
        sample = rng.choice(base.n + 1, size=min(base.n + 1, 12), replace=False)
        metric.check_axioms(sample.astype(np.int64))

    @given(st.integers(2, 4), st.integers(1, 3), st.integers(1, 2))
    @settings(max_examples=15, deadline=None)
    def test_nn_of_q_is_always_p_star(self, s, t, d):
        base = BlockAdversarialMetric(s, t, d)
        for p_star in range(0, base.n, max(base.n // 5, 1)):
            metric = BlockAdversarialMetric(s, t, d, p_star=p_star)
            dist = metric.distances(metric.query_id, metric.point_ids())
            assert int(np.argmin(dist)) == p_star


class TestGraphPersistenceRandomized:
    @given(
        n=st.integers(2, 40),
        m=st.integers(0, 300),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_save_load_roundtrip(self, tmp_path_factory, n, m, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (int(rng.integers(n)), int(rng.integers(n))) for _ in range(m)
        ]
        g = ProximityGraph.from_edge_list(n, edges)
        path = tmp_path_factory.mktemp("roundtrip") / "g.npz"
        g.save(path)
        loaded = ProximityGraph.load(path)
        assert loaded == g
        assert loaded.num_edges == g.num_edges


class TestGreedyDescentRandomGraphs:
    @given(st.integers(5, 30), st.integers(0, 10_000), st.floats(0.05, 0.6))
    @settings(max_examples=25, deadline=None)
    def test_hop_distances_strictly_decrease(self, n, seed, density):
        """On arbitrary random digraphs (no navigability whatsoever),
        greedy's hop sequence still descends strictly — a structural
        invariant of the procedure itself."""
        from repro.graphs import greedy

        rng = np.random.default_rng(seed)
        pts = rng.uniform(size=(n, 2))
        pts = np.unique(pts, axis=0)
        if len(pts) < 2:
            return
        ds = Dataset(EuclideanMetric(), pts)
        adj = [
            np.flatnonzero(rng.random(len(pts)) < density) for _ in range(len(pts))
        ]
        g = ProximityGraph(len(pts), adj)
        q = rng.uniform(size=2)
        result = greedy(g, ds, int(rng.integers(len(pts))), q)
        dists = [ds.distance_to_query(q, p) for p in result.hops]
        assert all(a > b for a, b in zip(dists, dists[1:]))
        assert result.self_terminated
