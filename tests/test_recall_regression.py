"""Recall regression floors — the accuracy ratchet for perf PRs.

One pinned-seed 1k-point Euclidean workload, five builders (the paper's
three constructions plus the two practical baselines), and hard floors
on recall@1 (the paper's greedy routine) and recall@10 (beam search).
Future performance work — batched construction, engine rewrites, metric
kernel changes — must keep every number at or above its floor, so speed
can never silently buy back accuracy.

Floors sit ~2-3 points below the values measured at introduction
(ISSUE 2), leaving room for last-ulp arithmetic drift across BLAS
builds but none for real regressions:

    builder   recall@1   recall@10   (measured)
    gnet      0.9900     1.0000
    theta     1.0000     1.0000
    merged    0.9900     1.0000
    hnsw      0.7650     0.9890
    vamana    0.6350     0.9935

The low greedy recall@1 of hnsw/vamana is expected: single-path greedy
on degree-capped graphs parks in local optima, which is why those
systems route with beams in practice (and why the paper's guaranteed
constructions hold ~0.99 under the *same* greedy).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    build,
    compute_ground_truth,
    compute_ground_truth_k,
    measure_queries,
)
from repro.graphs import beam_search_batch
from repro.metrics import Dataset, EuclideanMetric
from repro.metrics.scaling import normalize_min_distance
from repro.workloads import gaussian_clusters, near_data_queries, uniform_queries

EPS = 1.0

CONFIGS = {
    "gnet": {},
    "theta": {"theta": 0.25, "method": "sweep"},
    "merged": {"theta": 0.25, "gnet_method": "grid", "theta_method": "sweep"},
    "hnsw": {"m": 8, "ef_construction": 64},
    "vamana": {"max_degree": 16},
}

# (recall@1 floor, recall@10 floor) per builder — see module docstring.
FLOORS = {
    "gnet": (0.96, 0.995),
    "theta": (0.97, 0.995),
    "merged": (0.96, 0.995),
    "hnsw": (0.74, 0.96),
    "vamana": (0.61, 0.96),
}


@pytest.fixture(scope="module")
def workload():
    pts = gaussian_clusters(1000, 2, np.random.default_rng(2025), clusters=10)
    ds, _ = normalize_min_distance(Dataset(EuclideanMetric(), pts))
    rng = np.random.default_rng(7)
    queries = np.concatenate(
        [uniform_queries(100, pts, rng), near_data_queries(100, pts, rng)]
    )
    starts = rng.integers(ds.n, size=len(queries))
    gt1 = compute_ground_truth(ds, queries)
    gt10, _ = compute_ground_truth_k(ds, queries, k=10)
    return ds, queries, starts, gt1, gt10


@pytest.fixture(scope="module")
def graphs(workload):
    ds = workload[0]
    return {
        name: build(name, ds, EPS, np.random.default_rng(42), **opts).graph
        for name, opts in CONFIGS.items()
    }


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_recall_at_1_floor(name, workload, graphs):
    ds, queries, starts, gt1, _gt10 = workload
    stats = measure_queries(
        graphs[name], ds, queries, epsilon=EPS, ground_truth=gt1, starts=starts
    )
    floor = FLOORS[name][0]
    assert stats.recall_at_1 >= floor, (
        f"{name}: greedy recall@1 {stats.recall_at_1:.4f} fell below the "
        f"regression floor {floor}"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_recall_at_10_floor(name, workload, graphs):
    ds, queries, starts, _gt1, gt10 = workload
    found = beam_search_batch(
        graphs[name], ds, starts, queries, beam_width=32, k=10
    )
    hits = sum(
        len({v for v, _ in pairs} & set(gt10[i].tolist()))
        for i, (pairs, _evals) in enumerate(found)
    )
    recall = hits / (len(queries) * 10)
    floor = FLOORS[name][1]
    assert recall >= floor, (
        f"{name}: beam recall@10 {recall:.4f} fell below the regression "
        f"floor {floor}"
    )


@pytest.mark.parametrize("name", ["gnet", "theta", "merged"])
def test_guaranteed_builders_satisfy_epsilon(name, workload, graphs):
    """The paper's constructions must also keep their (1+eps) promise on
    this workload — recall floors are necessary, not sufficient."""
    ds, queries, starts, gt1, _gt10 = workload
    stats = measure_queries(
        graphs[name], ds, queries, epsilon=EPS, ground_truth=gt1, starts=starts
    )
    assert stats.epsilon_satisfied_fraction == 1.0, (
        f"{name}: {1 - stats.epsilon_satisfied_fraction:.2%} of queries "
        f"exceeded the (1+eps) guarantee"
    )


def test_batched_builds_meet_the_same_floors(workload):
    """Satellite tie-in: wave-built hnsw/vamana clear the identical
    floors, so the batched engine cannot trade recall for build speed."""
    ds, queries, starts, gt1, gt10 = workload
    for name in ("hnsw", "vamana"):
        graph = build(
            name, ds, EPS, np.random.default_rng(42),
            batch_size=100, **CONFIGS[name],
        ).graph
        stats = measure_queries(
            graph, ds, queries, epsilon=EPS, ground_truth=gt1, starts=starts
        )
        assert stats.recall_at_1 >= FLOORS[name][0], f"{name} batched recall@1"
        found = beam_search_batch(graph, ds, starts, queries, beam_width=32, k=10)
        hits = sum(
            len({v for v, _ in pairs} & set(gt10[i].tolist()))
            for i, (pairs, _evals) in enumerate(found)
        )
        recall = hits / (len(queries) * 10)
        assert recall >= FLOORS[name][1], f"{name} batched recall@10"
