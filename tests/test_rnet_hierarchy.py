"""Tests for r-nets and the farthest-point net hierarchy (Section 2.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import Dataset, EuclideanMetric, TreeMetric
from repro.nets import (
    NetHierarchy,
    RNetViolation,
    farthest_point_order,
    greedy_rnet,
    verify_rnet,
)


class TestGreedyRNet:
    def test_separation_and_covering(self, uniform2d):
        for r in [0.5, 2.0, 8.0, 32.0]:
            net = greedy_rnet(uniform2d, r)
            verify_rnet(uniform2d, net, r)

    def test_tiny_radius_keeps_everything(self, uniform2d):
        net = greedy_rnet(uniform2d, 1e-9)
        assert len(net) == uniform2d.n

    def test_huge_radius_keeps_one(self, uniform2d):
        net = greedy_rnet(uniform2d, 1e9)
        assert len(net) == 1

    def test_deterministic(self, uniform2d):
        assert np.array_equal(greedy_rnet(uniform2d, 3.0), greedy_rnet(uniform2d, 3.0))

    def test_candidate_subset(self, uniform2d, rng):
        subset = rng.choice(uniform2d.n, size=30, replace=False).astype(np.intp)
        net = greedy_rnet(uniform2d, 4.0, candidate_ids=subset)
        verify_rnet(uniform2d, net, 4.0, covered_ids=subset)

    def test_rejects_nonpositive_radius(self, uniform2d):
        with pytest.raises(ValueError):
            greedy_rnet(uniform2d, 0.0)

    @given(
        arrays(
            np.float64,
            (12, 2),
            elements=st.floats(0, 100, allow_nan=False, allow_infinity=False),
            unique=True,
        ),
        st.floats(0.1, 50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_rnet_invariants_property(self, pts, r):
        ds = Dataset(EuclideanMetric(), pts)
        verify_rnet(ds, greedy_rnet(ds, r), r)


class TestVerifyRNet:
    def test_catches_separation_violation(self, uniform2d):
        net = greedy_rnet(uniform2d, 8.0)
        # Add a point too close to an existing center.
        row = uniform2d.distances_from_index(int(net[0]), np.arange(uniform2d.n))
        close = int(np.argsort(row)[1])
        if close not in set(map(int, net)):
            bad = np.append(net, close)
            with pytest.raises(RNetViolation, match="separation"):
                verify_rnet(uniform2d, bad, 8.0)

    def test_catches_covering_violation(self, uniform2d):
        net = greedy_rnet(uniform2d, 4.0)
        if len(net) > 1:
            with pytest.raises(RNetViolation, match="covering|separation"):
                verify_rnet(uniform2d, net[:1], 0.5)

    def test_catches_duplicates(self, uniform2d):
        with pytest.raises(RNetViolation, match="duplicate"):
            verify_rnet(uniform2d, np.array([0, 0]), 1.0)

    def test_catches_foreign_centers(self, uniform2d, rng):
        subset = np.arange(10, dtype=np.intp)
        with pytest.raises(RNetViolation, match="covered set"):
            verify_rnet(uniform2d, np.array([50]), 1.0, covered_ids=subset)

    def test_empty_net_empty_cover(self, uniform2d):
        verify_rnet(
            uniform2d, np.array([], dtype=np.intp), 1.0,
            covered_ids=np.array([], dtype=np.intp),
        )


class TestFarthestPointOrder:
    def test_is_permutation(self, uniform2d):
        order, _ = farthest_point_order(uniform2d)
        assert sorted(order) == list(range(uniform2d.n))

    def test_insertion_distances_non_increasing(self, uniform2d):
        _, ins = farthest_point_order(uniform2d)
        assert np.isinf(ins[0])
        assert np.all(np.diff(ins[1:]) <= 1e-12)

    def test_insertion_distance_definition(self, uniform2d):
        order, ins = farthest_point_order(uniform2d)
        for k in [1, 5, 20, uniform2d.n - 1]:
            prefix = order[:k]
            want = uniform2d.distances_from_index(int(order[k]), prefix).min()
            assert ins[k] == pytest.approx(want)

    def test_min_insertion_at_least_min_distance(self, uniform2d):
        _, ins = farthest_point_order(uniform2d)
        assert ins[1:].min() >= uniform2d.min_interpoint_distance() - 1e-12

    def test_start_parameter(self, uniform2d):
        order, _ = farthest_point_order(uniform2d, start=17)
        assert order[0] == 17


class TestNetHierarchy:
    def test_every_level_is_a_net(self, uniform2d):
        hier = NetHierarchy(uniform2d)
        for i in range(hier.height + 1):
            verify_rnet(uniform2d, hier.level(i), float(2**i))

    def test_levels_nested(self, uniform2d):
        hier = NetHierarchy(uniform2d)
        for i in range(hier.height):
            assert set(map(int, hier.level(i + 1))) <= set(map(int, hier.level(i)))

    def test_level_zero_is_everything_when_normalized(self, uniform2d):
        # Normalized min distance 2 makes both Y_0 and Y_1 equal P.
        hier = NetHierarchy(uniform2d)
        assert hier.level_size(0) == uniform2d.n
        assert hier.level_size(1) == uniform2d.n

    def test_top_level_singleton(self, uniform2d):
        hier = NetHierarchy(uniform2d)
        # Derived height covers the diameter, so the top net is one point.
        assert hier.level_size(hier.height) == 1

    def test_net_for_arbitrary_radius(self, uniform2d):
        hier = NetHierarchy(uniform2d)
        for r in [3.0, 7.5, 40.0]:
            verify_rnet(uniform2d, hier.net_for_radius(r), r)

    def test_explicit_height_extends(self, uniform2d):
        hier = NetHierarchy(uniform2d, height=20)
        assert hier.height == 20
        assert hier.level_size(20) == 1

    def test_level_bounds_checked(self, uniform2d):
        hier = NetHierarchy(uniform2d)
        with pytest.raises(ValueError):
            hier.level(-1)
        with pytest.raises(ValueError):
            hier.level(hier.height + 1)

    def test_works_on_tree_metric(self):
        metric = TreeMetric(height=6)
        ds = Dataset(metric, np.arange(0, 64, 3, dtype=np.int64))
        hier = NetHierarchy(ds)
        for i in range(hier.height + 1):
            verify_rnet(ds, hier.level(i), float(2**i))
