"""The unified ``search()`` front door (ISSUE 3).

Contract under test:

* ``search()`` accepts one query or a batch and returns dense ``(m, k)``
  arrays of external ids and original-unit distances;
* the four legacy query methods are shims that *delegate* to
  ``search()`` and return bit-identical results (checked against the
  raw engines across three seeds);
* legacy methods emit ``DeprecationWarning`` exactly once per method;
* empty batches are handled cleanly everywhere (``m = 0``);
* repeated identical calls are reproducible by default — no shared-rng
  call-order dependence — and ``SearchParams(seed=..., starts=...)``
  override the draw;
* ``SearchParams(budget=...)`` caps distance evaluations in *both*
  engine modes (the beam path historically ignored it);
* ``allowed_ids`` filtering restricts results (never routing) and meets
  a recall floor against the masked brute-force ground truth.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.core.index as index_module
from repro import ProximityGraphIndex, SearchParams
from repro.core.search import IdMap
from repro.graphs.engine import beam_search_batch, greedy_batch
from repro.metrics import Dataset, EuclideanMetric
from repro.workloads import uniform_cube


@pytest.fixture(scope="module")
def index():
    pts = uniform_cube(250, 2, np.random.default_rng(11))
    return ProximityGraphIndex.build(pts, epsilon=1.0, method="vamana", seed=4)


@pytest.fixture(scope="module")
def queries():
    return np.random.default_rng(23).uniform(size=(20, 2))


class TestShapes:
    def test_single_query_returns_1_by_k(self, index, queries):
        r = index.search(queries[0], k=3)
        assert r.single and r.ids.shape == (1, 3) and r.distances.shape == (1, 3)
        assert r.top1()[0] == int(r.ids[0, 0])

    def test_batch_returns_m_by_k(self, index, queries):
        r = index.search(queries, k=5)
        assert not r.single
        assert r.ids.shape == (20, 5)
        assert (np.diff(r.distances, axis=1) >= 0).all()  # ascending rows
        assert r.evals.shape == (20,)

    def test_greedy_mode_reports_hops(self, index, queries):
        r = index.search(queries, params=SearchParams(mode="greedy"))
        assert r.hops is not None and (r.hops >= 1).all()
        rb = index.search(queries, k=3)
        assert rb.hops is None

    def test_empty_batch(self, index):
        for empty in ([], np.empty((0, 2))):
            r = index.search(empty, k=4)
            assert r.ids.shape == (0, 4) and len(r) == 0
        assert index.query_batch([]) == []
        assert index.query_k_batch([], k=3) == []
        stats = index.measure([])
        assert stats.num_queries == 0 and stats.max_distance_evals == 0

    def test_k_below_one_rejected(self, index, queries):
        with pytest.raises(ValueError, match="k must be"):
            index.search(queries, k=0)

    def test_greedy_with_k_above_one_rejected(self, index, queries):
        with pytest.raises(ValueError, match="greedy"):
            index.search(queries, k=2, params=SearchParams(mode="greedy"))

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown search mode"):
            SearchParams(mode="dfs")

    def test_distances_in_original_units(self, index, queries):
        pts = np.asarray(index.dataset.points)
        r = index.search(queries, k=1, params=SearchParams(mode="greedy"))
        for i in range(len(queries)):
            pid = int(r.ids[i, 0])
            assert r.distances[i, 0] == pytest.approx(
                float(np.linalg.norm(pts[pid] - queries[i])), rel=1e-9
            )


class TestLegacyShimEquivalence:
    """The acceptance bar: shims delegate and stay bit-identical to the
    engines they used to call directly, across three seeds."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_greedy_paths_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        pts = uniform_cube(150, 2, rng)
        index = ProximityGraphIndex.build(pts, epsilon=1.0, method="gnet", seed=seed)
        queries = rng.uniform(size=(15, 2))
        starts = rng.integers(index.n, size=15)

        raw = greedy_batch(index.graph, index.dataset, starts, queries)
        expect = [(r.point, r.distance / index.scale) for r in raw]

        via_search = index.search(
            queries, k=1, params=SearchParams(mode="greedy", starts=starts)
        )
        got_search = [
            (int(via_search.ids[i, 0]), float(via_search.distances[i, 0]))
            for i in range(15)
        ]
        assert got_search == expect
        assert index.query_batch(queries, starts=starts) == expect
        for i in range(15):
            assert index.query(queries[i], p_start=int(starts[i])) == expect[i]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_beam_paths_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        pts = uniform_cube(150, 2, rng)
        index = ProximityGraphIndex.build(pts, epsilon=1.0, method="vamana", seed=seed)
        queries = rng.uniform(size=(12, 2))
        starts = rng.integers(index.n, size=12)
        k, width = 4, 16

        raw = beam_search_batch(
            index.graph, index.dataset, starts, queries, beam_width=width, k=k
        )
        expect = [
            [(v, d / index.scale) for v, d in pairs] for pairs, _evals in raw
        ]

        via_search = index.search(
            queries,
            k=k,
            params=SearchParams(mode="beam", beam_width=width, starts=starts),
        )
        assert [via_search.pairs(i) for i in range(12)] == expect
        assert index.query_k_batch(queries, k=k, beam_width=width, starts=starts) == expect
        for i in range(12):
            assert (
                index.query_k(queries[i], k=k, beam_width=width, p_start=int(starts[i]))
                == expect[i]
            )

    def test_legacy_rng_draw_matches_search_with_same_starts(self):
        """A shim call without p_start draws from the legacy shared rng;
        replaying the draw must reproduce it through search()."""
        pts = uniform_cube(120, 2, np.random.default_rng(3))
        a = ProximityGraphIndex.build(pts, epsilon=1.0, method="gnet", seed=9)
        b = ProximityGraphIndex.build(pts, epsilon=1.0, method="gnet", seed=9)
        q = np.array([0.4, 0.6])
        got = a.query(q)
        start = int(b._rng.integers(b.n))
        r = b.search(q, params=SearchParams(mode="greedy", starts=[start]))
        assert got == r.top1()


class TestDeprecationWarnings:
    def test_each_legacy_method_warns_exactly_once(self, monkeypatch):
        monkeypatch.setattr(index_module, "_DEPRECATION_WARNED", set())
        pts = uniform_cube(80, 2, np.random.default_rng(0))
        index = ProximityGraphIndex.build(pts, epsilon=1.0, method="gnet")
        q = np.array([0.5, 0.5])
        calls = [
            lambda: index.query(q),
            lambda: index.query_k(q, k=2),
            lambda: index.query_batch([q, q]),
            lambda: index.query_k_batch([q, q], k=2),
        ]
        for call in calls:
            with warnings.catch_warnings(record=True) as first:
                warnings.simplefilter("always")
                call()
            assert len(first) == 1, "first call must warn"
            assert issubclass(first[0].category, DeprecationWarning)
            assert "deprecated" in str(first[0].message)
            with warnings.catch_warnings(record=True) as second:
                warnings.simplefilter("always")
                call()
            assert second == [], "second call must not warn again"

    def test_search_never_warns(self, index, queries):
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            index.search(queries, k=3)
        assert [x for x in w if issubclass(x.category, DeprecationWarning)] == []


class TestReproducibility:
    def test_identical_calls_identical_results(self, index, queries):
        a = index.search(queries, k=3)
        # interleave unrelated work that used to perturb shared rng state
        index.search(queries[:5], k=2)
        index.measure(queries[:5])
        b = index.search(queries, k=3)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)

    def test_measure_is_reproducible(self, index, queries):
        a = index.measure(queries)
        index.measure(queries[:3])  # would have advanced the old shared rng
        b = index.measure(queries)
        assert a.mean_distance_evals == b.mean_distance_evals
        assert a.recall_at_1 == b.recall_at_1

    def test_seed_changes_the_draw(self, index, queries):
        base = index.search(queries, params=SearchParams(mode="greedy"))
        seeded = index.search(queries, params=SearchParams(mode="greedy", seed=123))
        # distinct seeds draw distinct starts; evals will differ somewhere
        assert not np.array_equal(base.evals, seeded.evals)

    def test_explicit_starts_override_seed(self, index, queries):
        starts = np.zeros(len(queries), dtype=np.intp)
        a = index.search(queries, params=SearchParams(starts=starts, seed=5))
        b = index.search(queries, params=SearchParams(starts=starts, seed=99))
        assert np.array_equal(a.ids, b.ids)


class TestBudgetParity:
    def test_beam_budget_caps_evals(self, index, queries):
        capped = index.search(
            queries, k=5, params=SearchParams(mode="beam", budget=40)
        )
        assert (capped.evals <= 40).all()
        free = index.search(queries, k=5, params=SearchParams(mode="beam"))
        assert free.evals.max() > 40  # the cap actually bound something

    def test_greedy_budget_caps_evals(self, index, queries):
        capped = index.search(
            queries, params=SearchParams(mode="greedy", budget=10)
        )
        assert (capped.evals <= 10).all()

    def test_query_k_budget_now_honored(self, index, queries):
        """Satellite parity fix: the legacy beam shim forwards budget."""
        pairs = index.query_k(queries[0], k=3, budget=25, p_start=0)
        assert pairs  # still returns something
        r = index.search(
            queries[0],
            k=3,
            params=SearchParams(mode="beam", budget=25, starts=[0]),
        )
        assert r.pairs(0) == pairs
        assert int(r.evals[0]) <= 25


class TestFilteredSearch:
    def test_filter_restricts_results(self, index, queries):
        allowed = np.arange(0, index.n, 2)  # even external ids only
        r = index.search(
            queries, k=8, params=SearchParams(allowed_ids=allowed, beam_width=48)
        )
        found = r.ids[r.ids >= 0]
        assert len(found) and (found % 2 == 0).all()

    def test_unknown_filter_ids_ignored(self, index, queries):
        r = index.search(
            queries[:3],
            k=2,
            params=SearchParams(allowed_ids=[0, 1, 10**9], beam_width=8),
        )
        assert set(r.ids[r.ids >= 0].tolist()) <= {0, 1}

    def test_empty_filter_returns_padding(self, index, queries):
        r = index.search(queries[:4], k=3, params=SearchParams(allowed_ids=[]))
        assert (r.ids == -1).all() and np.isinf(r.distances).all()

    def test_filter_recall_floor_vs_masked_brute_force(self):
        """Filtered beam search must reach what brute force finds on the
        allowed subset (recall@10 floor on the pinned workload)."""
        rng = np.random.default_rng(2025)
        pts = uniform_cube(1000, 2, rng)
        index = ProximityGraphIndex.build(pts, epsilon=1.0, method="vamana", seed=42)
        queries = rng.uniform(size=(100, 2))
        allowed = np.flatnonzero(rng.uniform(size=1000) < 0.5)

        ds = Dataset(EuclideanMetric(), pts[allowed])
        hits, total = 0, 0
        r = index.search(
            queries,
            k=10,
            params=SearchParams(allowed_ids=allowed, beam_width=64, seed=7),
        )
        for i, q in enumerate(queries):
            dists = ds.distances_to_query_all(q)
            gt = set(allowed[np.argsort(dists, kind="stable")[:10]].tolist())
            got = set(r.ids[i][r.ids[i] >= 0].tolist())
            assert got <= set(allowed.tolist())
            hits += len(got & gt)
            total += 10
        assert hits / total >= 0.95, f"filtered recall@10 {hits / total:.3f}"

    def test_greedy_filter_returns_best_allowed_seen(self, index):
        """Greedy mode with a filter reports the closest allowed vertex
        the walk evaluated — never a disallowed one."""
        pts = np.asarray(index.dataset.points)
        allowed = np.arange(1, index.n, 2)  # odd ids
        qs = pts[:10]
        r = index.search(
            qs, params=SearchParams(mode="greedy", allowed_ids=allowed, starts=[0] * 10)
        )
        found = r.ids[r.ids >= 0]
        assert (found % 2 == 1).all()


class TestIdMapUnit:
    def test_identity_and_custom(self):
        m = IdMap.identity(4)
        assert m.is_identity() and len(m) == 4
        custom = IdMap([10, 20, 30])
        assert not custom.is_identity()
        assert custom.to_internal([20, 10]).tolist() == [1, 0]
        assert custom.to_external([2, -1, 0]).tolist() == [30, -1, 10]

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            IdMap([1, 1])

    def test_unknown_raises_and_known_filter_drops(self):
        m = IdMap([5, 6])
        with pytest.raises(KeyError, match="unknown external id"):
            m.to_internal([7])
        assert m.to_internal_known([5, 7, 6]).tolist() == [0, 1]

    def test_assign_fresh_never_recycles(self):
        m = IdMap([0, 1, 2])
        assert m.assign(2).tolist() == [3, 4]
        compacted = m.compact(np.array([0, 1, 3]))  # drop ids 2 and 4
        assert compacted.externals.tolist() == [0, 1, 3]
        assert compacted.assign(1).tolist() == [5]  # not a recycled 2 or 4

    def test_assign_explicit_clash_rejected(self):
        m = IdMap([0, 1])
        with pytest.raises(ValueError, match="already in use"):
            m.assign(1, [1])
        with pytest.raises(ValueError, match="unique"):
            m.assign(2, [7, 7])
