"""The serving layer: snapshot isolation, coalescing, cache, HTTP e2e.

Driven with ``asyncio.run()`` directly (no pytest-asyncio in the
toolchain); the HTTP end-to-end tests bind an ephemeral port and talk
real sockets through ``urllib`` on executor threads.
"""

from __future__ import annotations

import asyncio
import gc
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import ProximityGraphIndex, ShardedIndex
from repro.serve import BatchKey, Coalescer, IndexHolder, QueryCache, SearchServer
from repro.workloads import uniform_cube


def _flat(n: int = 90, seed: int = 2) -> ProximityGraphIndex:
    pts = uniform_cube(n, 4, np.random.default_rng(seed))
    return ProximityGraphIndex.build(pts, epsilon=1.0, method="vamana", seed=seed)


# ----------------------------------------------------------------------
# Snapshot isolation (the core/index + core/sharded hooks)
# ----------------------------------------------------------------------


class TestSnapshot:
    def test_mutating_snapshot_leaves_original_untouched(self):
        index = _flat()
        q = np.full(4, 0.5)
        before = index.search(q, k=5)
        snap = index.snapshot()
        snap.add(np.random.default_rng(7).uniform(size=(6, 4)))
        snap.delete([0, 1])
        after = index.search(q, k=5)
        assert np.array_equal(before.ids, after.ids)
        assert np.array_equal(before.distances, after.distances)
        assert index.active_count == 90 and snap.active_count == 94

    def test_mutating_original_leaves_snapshot_untouched(self):
        index = _flat()
        snap = index.snapshot()
        index.delete([2])
        index.add(np.random.default_rng(8).uniform(size=(3, 4)))
        assert snap.active_count == 90
        assert snap.tombstone_count == 0

    def test_snapshot_ids_are_independent(self):
        index = _flat(n=30)
        snap = index.snapshot()
        a = snap.add(np.random.default_rng(1).uniform(size=(2, 4)))
        b = index.add(np.random.default_rng(1).uniform(size=(2, 4)))
        # Both continue from the same next id — independently.
        assert a.tolist() == b.tolist() == [30, 31]

    def test_snapshot_compact_does_not_disturb_original(self):
        index = _flat(n=40)
        index.delete([0, 1, 2])
        snap = index.snapshot()
        snap.compact()
        assert snap.tombstone_count == 0 and snap.n == 37
        assert index.tombstone_count == 3 and index.n == 40

    @pytest.mark.parametrize("storage", ["sq8", "pq"])
    def test_quantized_snapshot_refresh_is_isolated(self, storage):
        pts = uniform_cube(80, 4, np.random.default_rng(5))
        index = ProximityGraphIndex.build(
            pts, epsilon=1.0, method="vamana", seed=5, storage=storage
        )
        snap = index.snapshot()
        snap.add(np.random.default_rng(6).uniform(size=(4, 4)))
        assert index.store.n == 80 and snap.store.n == 84
        assert index.store.drift == 0 and snap.store.drift == 4

    def test_sharded_snapshot_survives_arena_unlink(self):
        pts = uniform_cube(100, 4, np.random.default_rng(9))
        sharded = ShardedIndex.build(
            pts, epsilon=1.0, method="knn", k=6, seed=9, shards=2, workers=2
        )
        q = pts[:5]
        snap = sharded.snapshot()
        expect = snap.search(q, k=3)
        sharded.close()
        del sharded
        gc.collect()
        # The snapshot detached from the shared-memory arena, so it
        # keeps answering after the original unlinked it.
        got = snap.search(q, k=3)
        assert np.array_equal(expect.ids, got.ids)
        snap.add(np.random.default_rng(1).uniform(size=(2, 4)))
        snap.close()

    def test_sharded_snapshot_isolation(self):
        pts = uniform_cube(60, 4, np.random.default_rng(4))
        sharded = ShardedIndex.build(
            pts, epsilon=1.0, method="knn", k=6, seed=4, shards=2
        )
        snap = sharded.snapshot()
        snap.delete([0, 1, 2])
        assert sharded.tombstone_count == 0 and snap.tombstone_count == 3
        sharded.close()
        snap.close()


class TestIndexHolder:
    def test_mutate_swaps_and_bumps_generation(self):
        index = _flat(n=40)
        holder = IndexHolder(index)
        assert holder.generation == 0
        holder.delete([0])
        assert holder.generation == 1
        assert holder.current is not index  # swapped, not mutated
        assert index.tombstone_count == 0
        assert holder.current.tombstone_count == 1

    def test_failed_mutation_swaps_nothing(self):
        index = _flat(n=40)
        holder = IndexHolder(index)
        with pytest.raises(KeyError):
            holder.delete([99999])
        assert holder.generation == 0
        assert holder.current is index

    def test_reader_keeps_its_pinned_object(self):
        holder = IndexHolder(_flat(n=40))
        pinned, gen = holder.state
        holder.add(np.random.default_rng(0).uniform(size=(1, 4)))
        assert holder.generation == gen + 1
        assert pinned.n == 40  # the pinned object never changed


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------


class TestCoalescer:
    def test_compatible_requests_share_one_batch(self):
        index = _flat()
        holder = IndexHolder(index)

        async def run():
            coalescer = Coalescer(holder, max_batch=64, max_wait_ms=20.0)
            try:
                Q = uniform_cube(10, 4, np.random.default_rng(3))
                key = BatchKey(k=3)
                rows = await asyncio.gather(
                    *[coalescer.submit(q, key) for q in Q]
                )
                return Q, rows, coalescer.stats.summary()
            finally:
                coalescer.close()

        Q, rows, stats = asyncio.run(run())
        assert stats["batches"] == 1
        assert stats["max_batch_size"] == 10
        assert all(r.batch_size == 10 for r in rows)
        # Scattered rows ARE the batch result: identical to calling the
        # engine with the same stacked batch directly.  The coalescer
        # seeds each dispatch with its batch sequence number (the first
        # dispatched batch gets seed=1), so replay with that seed.
        direct = index.search(Q, k=3, params=BatchKey(k=3).params(seed=1))
        for i, row in enumerate(rows):
            assert np.array_equal(row.ids, direct.ids[i])
            assert np.array_equal(row.distances, direct.distances[i])

    def test_incompatible_keys_never_share(self):
        holder = IndexHolder(_flat())

        async def run():
            coalescer = Coalescer(holder, max_batch=64, max_wait_ms=10.0)
            try:
                q = np.full(4, 0.5)
                await asyncio.gather(
                    coalescer.submit(q, BatchKey(k=1)),
                    coalescer.submit(q, BatchKey(k=3)),
                    coalescer.submit(q, BatchKey(k=3, beam_width=32)),
                )
                return coalescer.stats.summary()
            finally:
                coalescer.close()

        stats = asyncio.run(run())
        assert stats["batches"] == 3
        assert stats["max_batch_size"] == 1

    def test_max_batch_flushes_immediately(self):
        holder = IndexHolder(_flat())

        async def run():
            # A long tick: only the size trigger can flush in time.
            coalescer = Coalescer(holder, max_batch=4, max_wait_ms=5000.0)
            try:
                Q = uniform_cube(8, 4, np.random.default_rng(1))
                key = BatchKey(k=2)
                rows = await asyncio.wait_for(
                    asyncio.gather(*[coalescer.submit(q, key) for q in Q]),
                    timeout=10.0,
                )
                return rows, coalescer.stats.summary()
            finally:
                coalescer.close()

        rows, stats = asyncio.run(run())
        assert stats["batches"] == 2
        assert stats["batch_size_counts"] == {"4": 2}
        assert all(r.batch_size == 4 for r in rows)

    def test_search_error_reaches_every_future(self):
        holder = IndexHolder(_flat())

        async def run():
            coalescer = Coalescer(holder, max_batch=64, max_wait_ms=5.0)
            try:
                # Bypass front-door validation to force an engine error
                # inside the dispatched batch (the HTTP layer prevents
                # this by validating before submit).
                bad = np.full(4, np.nan)
                futures = [
                    coalescer.submit(bad, BatchKey(k=1)),
                    coalescer.submit(np.full(4, 0.5), BatchKey(k=1)),
                ]
                results = await asyncio.gather(*futures, return_exceptions=True)
                return results, coalescer.stats.summary()
            finally:
                coalescer.close()

        results, stats = asyncio.run(run())
        assert all(isinstance(r, ValueError) for r in results)
        assert stats["errors"] == 1


# ----------------------------------------------------------------------
# Query cache
# ----------------------------------------------------------------------


class TestQueryCache:
    def test_hit_miss_counters(self):
        cache = QueryCache(capacity=8)
        q = np.array([1.0, 2.0])
        k = QueryCache.key(q, BatchKey(k=3), generation=0)
        assert cache.get(k) is None
        cache.put(k, {"ids": [1]})
        assert cache.get(k) == {"ids": [1]}
        assert cache.hits == 1 and cache.misses == 1

    def test_generation_in_key_invalidates_on_swap(self):
        cache = QueryCache(capacity=8)
        q = np.array([1.0, 2.0])
        cache.put(QueryCache.key(q, BatchKey(), 0), "old")
        assert cache.get(QueryCache.key(q, BatchKey(), 1)) is None

    def test_lru_evicts_oldest(self):
        cache = QueryCache(capacity=2)
        keys = [
            QueryCache.key(np.array([float(i)]), BatchKey(), 0) for i in range(3)
        ]
        cache.put(keys[0], 0)
        cache.put(keys[1], 1)
        assert cache.get(keys[0]) == 0  # freshen 0; 1 is now oldest
        cache.put(keys[2], 2)
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == 0 and cache.get(keys[2]) == 2

    def test_zero_capacity_disables(self):
        cache = QueryCache(capacity=0)
        k = QueryCache.key(np.array([1.0]), BatchKey(), 0)
        cache.put(k, "x")
        assert cache.get(k) is None
        assert len(cache) == 0

    def test_params_distinguish_entries(self):
        cache = QueryCache(capacity=8)
        q = np.array([1.0])
        cache.put(QueryCache.key(q, BatchKey(k=1), 0), "k1")
        assert cache.get(QueryCache.key(q, BatchKey(k=2), 0)) is None


# ----------------------------------------------------------------------
# HTTP end to end
# ----------------------------------------------------------------------


def _fetch(base: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _serve_test(coro_fn, index=None, **server_kw):
    """Run ``coro_fn(base_url, server)`` against a live server."""

    async def run():
        holder = IndexHolder(index if index is not None else _flat())
        server = SearchServer(holder, **server_kw)
        host, port = await server.start("127.0.0.1", 0)
        try:
            return await coro_fn(f"http://{host}:{port}", server)
        finally:
            await server.stop()

    return asyncio.run(run())


async def _afetch(base, path, body=None):
    return await asyncio.get_running_loop().run_in_executor(
        None, _fetch, base, path, body
    )


class TestHTTP:
    def test_healthz(self):
        async def go(base, _server):
            return await _afetch(base, "/healthz")

        status, body = _serve_test(go)
        assert status == 200
        assert body["status"] == "ok" and body["n"] == 90

    def test_concurrent_searches_coalesce_and_match_direct(self):
        index = _flat()
        Q = uniform_cube(12, 4, np.random.default_rng(11))

        async def go(base, _server):
            results = await asyncio.gather(
                *[
                    _afetch(base, "/search", {"query": q.tolist(), "k": 3})
                    for q in Q
                ]
            )
            _, stats = await _afetch(base, "/stats")
            return results, stats

        results, stats = _serve_test(go, index=index, max_wait_ms=25.0)
        assert all(status == 200 for status, _ in results)
        assert stats["coalescer"]["max_batch_size"] > 1
        # Recall parity with a direct batch call: same ids whenever the
        # server coalesced the full set into one dispatch; at minimum
        # every response is a valid k=3 row.
        for _, body in results:
            assert len(body["ids"]) == 3
            assert all(v >= 0 for v in body["ids"])

    def test_cache_hit_on_identical_request(self):
        async def go(base, _server):
            q = {"query": [0.5, 0.5, 0.5, 0.5], "k": 2}
            _, first = await _afetch(base, "/search", q)
            _, second = await _afetch(base, "/search", q)
            _, stats = await _afetch(base, "/stats")
            return first, second, stats

        first, second, stats = _serve_test(go)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["ids"] == first["ids"]
        assert stats["cache"]["hits"] == 1

    def test_validation_errors_are_400(self):
        async def go(base, _server):
            codes = {}
            for name, payload in {
                "wrong_dim": {"query": [0.5] * 7, "k": 1},
                "nan": {"query": [float("nan")] * 4, "k": 1},
                "missing": {"k": 1},
                "bad_k": {"query": [0.5] * 4, "k": 0},
                "not_numeric": {"query": ["a", "b"]},
            }.items():
                try:
                    await _afetch(base, "/search", payload)
                    codes[name] = 200
                except urllib.error.HTTPError as exc:
                    codes[name] = exc.code
                    exc.read()
            return codes

        codes = _serve_test(go)
        assert all(code == 400 for code in codes.values()), codes

    def test_add_then_search_sees_new_point_and_generation(self):
        async def go(base, _server):
            far = [40.0, 40.0, 40.0, 40.0]
            _, added = await _afetch(base, "/add", {"points": [far]})
            # beam_width forces beam traversal: pure greedy descent can
            # stall in a local minimum and has no visibility guarantee.
            _, found = await _afetch(
                base, "/search", {"query": far, "k": 1, "beam_width": 16}
            )
            return added, found

        added, found = _serve_test(go)
        assert added["generation"] == 1
        assert found["ids"][0] == added["ids"][0]
        assert found["generation"] == 1

    def test_delete_is_atomic_over_http(self):
        async def go(base, _server):
            try:
                await _afetch(base, "/delete", {"ids": [0, 99999]})
                code = 200
            except urllib.error.HTTPError as exc:
                code = exc.code
                exc.read()
            _, health = await _afetch(base, "/healthz")
            return code, health

        code, health = _serve_test(go)
        assert code == 400
        assert health["active"] == 90  # id 0 survived the failed batch
        assert health["generation"] == 0  # nothing swapped

    def test_padding_contract_over_json(self):
        async def go(base, _server):
            return await _afetch(
                base,
                "/search",
                {"query": [0.5] * 4, "k": 5, "allowed_ids": [1, 2]},
            )

        _, body = _serve_test(go)
        assert body["ids"][2:] == [-1, -1, -1]
        # JSON has no inf: the padded tail serializes as null.
        assert body["distances"][2:] == [None, None, None]
        assert all(d is not None for d in body["distances"][:2])

    def test_unknown_route_is_404(self):
        async def go(base, _server):
            try:
                await _afetch(base, "/nope", {})
                return 200
            except urllib.error.HTTPError as exc:
                exc.read()
                return exc.code

        assert _serve_test(go) == 404

    def test_interleaved_writes_never_expose_partial_state(self):
        """The acceptance invariant, in miniature: a writer repeatedly
        adds and deletes a complete 4-point cluster at a far corner
        while readers query for exactly those ids (``allowed_ids``
        makes the answer retrieval-proof: every live member of the set
        comes back, or none) — a proper subset would mean a response
        saw a partially-applied mutation."""
        index = _flat()
        corner = np.full(4, 30.0)
        cluster = (corner + np.arange(4)[:, None] * 0.5).tolist()

        async def go(base, _server):
            torn = []
            live_ids = [[]]

            async def writer():
                for _ in range(6):
                    _, added = await _afetch(base, "/add", {"points": cluster})
                    live_ids[0] = added["ids"]
                    await asyncio.sleep(0.002)
                    await _afetch(base, "/delete", {"ids": added["ids"]})

            async def reader():
                for _ in range(30):
                    ids = live_ids[0]
                    if not ids:
                        await asyncio.sleep(0)
                        continue
                    _, body = await _afetch(
                        base,
                        "/search",
                        {
                            "query": corner.tolist(),
                            "k": 4,
                            "allowed_ids": ids,
                        },
                    )
                    close = [
                        v
                        for v, d in zip(body["ids"], body["distances"])
                        if d is not None
                    ]
                    if len(close) not in (0, 4):
                        torn.append(close)

            await asyncio.gather(writer(), reader(), reader())
            return torn

        torn = _serve_test(go, index=index, cache_size=0, max_wait_ms=0.5)
        assert torn == []
