"""ShardedIndex: partitioning, fan-out search, mutation routing, pools.

The load-bearing contract is **flat equivalence**: a sharded index with
``shards=1, workers=1`` must return bit-identical ids and distances to
the flat :class:`ProximityGraphIndex` built with the same arguments
(pinned on 3 seeds), and the pooled build/search paths must answer
identically to the in-process ones.  The spawn start method is
exercised explicitly (``REPRO_MP_START_METHOD``) so a pickling
regression in the worker task surfaces here, not in production.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ProximityGraphIndex,
    SearchableIndex,
    SearchParams,
    ShardedIndex,
)
from repro.core.sharded import partition_points, rehydrate_shard, shard_payload
from repro.core.stats import compute_ground_truth_k, recall_at_k
from repro.metrics import Dataset, EuclideanMetric

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _points(seed: int, n: int = 240, d: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).uniform(size=(n, d))


def _queries(seed: int, m: int = 20, d: int = 3) -> np.ndarray:
    return np.random.default_rng(seed + 1000).uniform(size=(m, d))


class TestPartitioning:
    def test_random_balanced_and_sorted(self):
        pts = _points(0, n=103)
        members = partition_points(pts, 4, "random", np.random.default_rng(0))
        sizes = sorted(len(m) for m in members)
        assert sum(sizes) == 103
        assert sizes[-1] - sizes[0] <= 1
        joined = np.concatenate(members)
        assert sorted(joined.tolist()) == list(range(103))
        for m in members:
            assert np.array_equal(m, np.sort(m))

    def test_single_shard_is_identity(self):
        pts = _points(0, n=50)
        (members,) = partition_points(pts, 1, "random", np.random.default_rng(3))
        assert np.array_equal(members, np.arange(50))

    def test_kmeans_covers_and_respects_min_size(self):
        pts = _points(1, n=40, d=2)
        members = partition_points(pts, 5, "kmeans", np.random.default_rng(0))
        assert sorted(np.concatenate(members).tolist()) == list(range(40))
        assert min(len(m) for m in members) >= 2

    def test_kmeans_small_n_rebalances(self):
        # n barely above 2*shards — the regime where capacity-greedy
        # k-means can strand a cluster below the 2-point floor.
        pts = _points(2, n=11, d=2)
        members = partition_points(pts, 5, "kmeans", np.random.default_rng(1))
        assert min(len(m) for m in members) >= 2

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError, match="fewer than 2 points"):
            partition_points(_points(0, n=10), 6, "random", np.random.default_rng(0))

    def test_unknown_assignment_rejected(self):
        with pytest.raises(ValueError, match="unknown assignment"):
            partition_points(_points(0), 2, "spectral", np.random.default_rng(0))


class TestFlatEquivalence:
    """shards=1, workers=1 must be bit-identical to the flat index."""

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_bit_identical_on_three_seeds(self, seed):
        pts = _points(seed)
        queries = _queries(seed)
        flat = ProximityGraphIndex.build(pts, method="vamana", seed=seed)
        sharded = ShardedIndex.build(
            pts, method="vamana", shards=1, workers=1, seed=seed
        )
        for k, params in [
            (1, None),                                   # greedy path
            (10, None),                                  # beam path
            (5, SearchParams(beam_width=24, seed=3)),
            (3, SearchParams(budget=60)),
        ]:
            rf = flat.search(queries, k=k, params=params)
            rs = sharded.search(queries, k=k, params=params)
            assert np.array_equal(rf.ids, rs.ids)
            assert np.array_equal(rf.distances, rs.distances)
            assert np.array_equal(rf.evals, rs.evals)
            if rf.hops is not None:
                assert np.array_equal(rf.hops, rs.hops)

    def test_single_query_conveniences_match(self):
        pts = _points(3)
        q = _queries(3)[0]
        flat = ProximityGraphIndex.build(pts, method="vamana", seed=3)
        sharded = ShardedIndex.build(pts, method="vamana", shards=1, seed=3)
        assert flat.search(q).top1() == sharded.search(q).top1()
        assert sharded.search(q).single

    def test_shard_evals_breakdown_sums(self):
        pts = _points(4)
        sharded = ShardedIndex.build(pts, method="vamana", shards=3, seed=4)
        r = sharded.search(_queries(4), k=5)
        assert r.shard_evals.shape == (20, 3)
        assert np.array_equal(r.shard_evals.sum(axis=1), r.evals)


class TestFanOut:
    def test_recall_close_to_flat(self):
        pts = _points(5, n=400)
        queries = _queries(5, m=40)
        dataset = Dataset(EuclideanMetric(), pts)
        gt, _ = compute_ground_truth_k(dataset, queries, k=10)
        flat = ProximityGraphIndex.build(pts, method="vamana", seed=5)
        sharded = ShardedIndex.build(pts, method="vamana", shards=4, seed=5)
        assert (
            recall_at_k(sharded, queries, gt, 10)
            >= recall_at_k(flat, queries, gt, 10) - 0.02
        )

    def test_merged_rows_sorted_and_deduplicated(self):
        pts = _points(6)
        sharded = ShardedIndex.build(pts, method="vamana", shards=3, seed=6)
        r = sharded.search(_queries(6), k=8)
        for i in range(r.m):
            row_d = r.distances[i][r.ids[i] >= 0]
            assert np.all(np.diff(row_d) >= 0)
            row_ids = r.ids[i][r.ids[i] >= 0]
            assert len(set(row_ids.tolist())) == len(row_ids)

    def test_greedy_fan_out_reports_winner_hops(self):
        pts = _points(7)
        sharded = ShardedIndex.build(pts, method="vamana", shards=3, seed=7)
        r = sharded.search(_queries(7), k=1)
        assert r.hops is not None and r.hops.shape == (20,)
        assert (r.hops >= 1).all()

    def test_filter_applies_across_shards(self):
        pts = _points(8)
        sharded = ShardedIndex.build(pts, method="vamana", shards=3, seed=8)
        allowed = list(range(0, 240, 7))
        r = sharded.search(
            _queries(8), k=5, params=SearchParams(allowed_ids=allowed)
        )
        returned = set(r.ids[r.ids >= 0].tolist())
        assert returned <= set(allowed)

    def test_explicit_starts_rejected_with_multiple_shards(self):
        pts = _points(9)
        sharded = ShardedIndex.build(pts, method="vamana", shards=2, seed=9)
        with pytest.raises(ValueError, match="shard-local"):
            sharded.search(
                _queries(9), params=SearchParams(starts=np.zeros(20, dtype=int))
            )

    def test_chunked_execution_identical(self):
        pts = _points(10)
        queries = _queries(10, m=30)
        a = ShardedIndex.build(pts, method="vamana", shards=3, seed=10)
        b = ShardedIndex.build(
            pts, method="vamana", shards=3, seed=10, search_chunk=7
        )
        ra, rb = a.search(queries, k=5), b.search(queries, k=5)
        assert np.array_equal(ra.ids, rb.ids)
        assert np.array_equal(ra.distances, rb.distances)
        assert np.array_equal(ra.evals, rb.evals)


class TestEmptyAndTombstoned:
    """The never-raise satellite: empty batches, exhausted filters, and
    fully tombstoned collections return padded arrays on both kinds."""

    @pytest.fixture(params=["flat", "sharded"])
    def index(self, request) -> SearchableIndex:
        pts = _points(11, n=60)
        if request.param == "flat":
            return ProximityGraphIndex.build(pts, method="vamana", seed=11)
        return ShardedIndex.build(pts, method="vamana", shards=3, seed=11)

    def test_empty_batch(self, index):
        r = index.search(np.empty((0, 3)), k=4)
        assert r.ids.shape == (0, 4) and r.evals.shape == (0,)

    def test_fully_tombstoned_beam_and_greedy(self, index):
        index.delete(list(range(60)))
        r = index.search(_queries(11, m=3), k=4)
        assert (r.ids == -1).all() and np.isinf(r.distances).all()
        g = index.search(_queries(11, m=3), k=1, params=SearchParams(mode="greedy"))
        assert (g.ids == -1).all()

    def test_empty_filter(self, index):
        r = index.search(_queries(11, m=3), k=4, params=SearchParams(allowed_ids=[]))
        assert (r.ids == -1).all()

    def test_unknown_only_filter(self, index):
        r = index.search(
            _queries(11, m=3), k=4, params=SearchParams(allowed_ids=[10_000])
        )
        assert (r.ids == -1).all()

    def test_partial_tombstones_mixed_shards(self):
        """Regression: mode='auto' must resolve once for the whole
        fan-out.  With tombstones in only one shard, a per-shard auto
        would mix greedy (hops) and beam (no hops) results, which
        cannot merge."""
        pts = _points(29)
        sharded = ShardedIndex.build(pts, method="vamana", shards=3, seed=29)
        victim = int(np.asarray(sharded.shards[1].id_map.externals)[0])
        sharded.delete([victim])
        r = sharded.search(_queries(29, m=4), k=1)  # auto -> beam everywhere
        assert r.hops is None
        assert victim not in set(r.ids.ravel().tolist())
        assert (r.ids >= 0).all()
        g = sharded.search(
            _queries(29, m=4), k=1, params=SearchParams(mode="greedy")
        )
        assert g.hops is not None and g.hops.shape == (4,)
        assert victim not in set(g.ids.ravel().tolist())


class TestMutationRouting:
    def test_add_routes_to_least_loaded(self):
        pts = _points(12)
        sharded = ShardedIndex.build(pts, method="vamana", shards=3, seed=12)
        sharded.delete(np.asarray(sharded.shards[1].id_map.externals)[:30].tolist())
        before = [s.active_count for s in sharded.shards]
        assert min(before) == before[1]
        ids = sharded.add(_points(13, n=5))
        assert [s.active_count for s in sharded.shards][1] == before[1] + 5
        assert all(sharded._owner[int(e)] == 1 for e in ids)

    def test_ids_stay_global_and_fresh(self):
        pts = _points(14)
        sharded = ShardedIndex.build(pts, method="vamana", shards=2, seed=14)
        a = sharded.add(_points(15, n=3))
        b = sharded.add(_points(16, n=3))
        assert len(set(a.tolist()) | set(b.tolist())) == 6
        assert a.min() >= 240
        with pytest.raises(ValueError, match="already in use"):
            sharded.add(_points(17, n=1), ids=[int(a[0])])

    def test_added_points_searchable(self):
        pts = _points(18)
        sharded = ShardedIndex.build(pts, method="vamana", shards=2, seed=18)
        new_pt = np.full(3, 2.5)  # far outside the unit cube
        (new_id,) = sharded.add(new_pt[None]).tolist()
        got, _ = sharded.search(new_pt, k=1).top1()
        assert got == new_id

    def test_delete_routes_to_owner_and_unknown_raises(self):
        pts = _points(19)
        sharded = ShardedIndex.build(pts, method="vamana", shards=3, seed=19)
        assert sharded.delete([3, 5, 7]) == 3
        assert sharded.delete([3]) == 0  # double delete is a no-op
        with pytest.raises(KeyError, match="unknown external id"):
            sharded.delete([99999])
        r = sharded.search(_queries(19), k=5)
        assert not ({3, 5, 7} & set(r.ids[r.ids >= 0].tolist()))

    def test_compact_drops_tombstones_keeps_ids(self):
        pts = _points(20)
        sharded = ShardedIndex.build(pts, method="vamana", shards=3, seed=20)
        sharded.delete(list(range(0, 60)))
        sharded.compact()
        assert sharded.tombstone_count == 0
        assert sharded.n == 180
        r = sharded.search(_queries(20), k=5)
        assert r.ids[r.ids >= 0].min() >= 60


class TestProtocol:
    def test_both_kinds_implement_searchable_index(self):
        pts = _points(21, n=60)
        flat = ProximityGraphIndex.build(pts, method="vamana", seed=21)
        sharded = ShardedIndex.build(pts, method="vamana", shards=2, seed=21)
        assert isinstance(flat, SearchableIndex)
        assert isinstance(sharded, SearchableIndex)

    def test_stats_shape(self):
        pts = _points(22, n=60)
        sharded = ShardedIndex.build(pts, method="vamana", shards=2, seed=22)
        s = sharded.stats()
        assert s["kind"] == "sharded" and s["shards"] == 2
        assert len(s["per_shard"]) == 2
        assert s["n"] == 60


class TestProcessPools:
    """workers > 1: pooled build and pooled fan-out search."""

    def test_pooled_build_matches_in_process(self):
        pts = _points(23)
        a = ShardedIndex.build(pts, method="vamana", shards=3, workers=1, seed=23)
        b = ShardedIndex.build(pts, method="vamana", shards=3, workers=2, seed=23)
        try:
            for sa, sb in zip(a.shards, b.shards):
                oa, ta = sa.graph.csr()
                ob, tb = sb.graph.csr()
                assert np.array_equal(oa, ob) and np.array_equal(ta, tb)
                assert sa.scale == sb.scale
        finally:
            a.close()
            b.close()

    def test_pooled_search_matches_in_process(self):
        pts = _points(24)
        queries = _queries(24)
        a = ShardedIndex.build(pts, method="vamana", shards=3, workers=1, seed=24)
        b = ShardedIndex.build(pts, method="vamana", shards=3, workers=2, seed=24)
        try:
            ra = a.search(queries, k=5)
            rb = b.search(queries, k=5)
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
            assert np.array_equal(ra.evals, rb.evals)
        finally:
            a.close()
            b.close()

    def test_pooled_search_after_mutation(self):
        # A mutation invalidates the arena backing for the touched
        # shard; the fan-out must transparently inline its points.
        pts = _points(25)
        b = ShardedIndex.build(pts, method="vamana", shards=2, workers=2, seed=25)
        try:
            new_pt = np.full(3, 3.0)
            (new_id,) = b.add(new_pt[None]).tolist()
            got, _ = b.search(new_pt, k=1).top1()
            assert got == new_id
        finally:
            b.close()

    def test_spawn_start_method(self, monkeypatch):
        # The CI spawn job runs the whole module this way; this test
        # pins it locally too so a non-picklable task dict fails fast.
        monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
        pts = _points(26, n=120)
        b = ShardedIndex.build(pts, method="vamana", shards=2, workers=2, seed=26)
        try:
            r = b.search(_queries(26, m=5), k=3)
            assert r.ids.shape == (5, 3)
        finally:
            b.close()

    def test_payload_round_trip(self):
        pts = _points(27, n=80)
        sharded = ShardedIndex.build(pts, method="vamana", shards=2, seed=27)
        shard = sharded.shards[0]
        rebuilt, attachment = rehydrate_shard(shard_payload(shard))
        assert attachment is None
        q = _queries(27, m=4)
        ra = shard.search(q, k=3)
        rb = rebuilt.search(q, k=3)
        assert np.array_equal(ra.ids, rb.ids)
        assert np.array_equal(ra.distances, rb.distances)

    def test_closed_index_refuses_search(self):
        pts = _points(28, n=60)
        sharded = ShardedIndex.build(pts, method="vamana", shards=2, seed=28)
        sharded.close()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.search(_queries(28, m=2))


class TestLinterDrivenRegressions:
    """Pins for the true positives `repro lint` flagged in this tree."""

    def test_worker_cache_token_is_deterministic(self):
        # The worker-cache token was uuid.uuid4() — entropy in library
        # code (determinism rule).  It only needs per-process
        # uniqueness, so it is now a counter; same-process instances
        # must still get distinct tokens.
        import re

        pts = _points(30, n=60)
        a = ShardedIndex.build(pts, method="vamana", shards=2, seed=30)
        b = ShardedIndex.build(pts, method="vamana", shards=2, seed=30)
        try:
            assert re.fullmatch(r"sharded-\d+", a._token)
            assert re.fullmatch(r"sharded-\d+", b._token)
            assert a._token != b._token
        finally:
            a.close()
            b.close()

    def test_arena_create_releases_shm_on_failure(self, monkeypatch):
        # SharedArena.create leaked the segment if anything failed
        # between SharedMemory() and the return (arena-hygiene rule).
        # Force a failure mid-create and verify the segment is gone.
        from multiprocessing import shared_memory as real_shared_memory

        from repro.metrics import arena as arena_mod

        created: list[str] = []
        real_cls = real_shared_memory.SharedMemory

        class Recording(real_cls):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self.name)

        monkeypatch.setattr(
            arena_mod.shared_memory, "SharedMemory", Recording
        )

        def boom(*args, **kwargs):
            raise RuntimeError("injected failure after segment creation")

        monkeypatch.setattr(arena_mod, "ArenaSpec", boom)

        with pytest.raises(RuntimeError, match="injected failure"):
            arena_mod.SharedArena.create(_points(31, n=8))

        assert created, "the recording wrapper never saw a segment"
        for name in created:
            with pytest.raises(FileNotFoundError):
                real_cls(name=name)
