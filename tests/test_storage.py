"""The storage layer: encoders, degenerate-data guards, views, and the
v4 persistence of codes + codebooks + training stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ProximityGraphIndex, SearchParams, ShardedIndex
from repro.metrics.base import ScaledMetric
from repro.metrics.euclidean import ChebyshevMetric, EuclideanMetric, MinkowskiMetric
from repro.storage import (
    FlatStore,
    PQStore,
    QuantizerTrainingError,
    StorageConfigError,
    make_store,
    store_from_arrays,
    train_store_params,
)
from repro.storage.pq import default_subspaces, encode_pq, train_pq
from repro.storage.sq8 import decode_sq8, encode_sq8, train_sq8
from repro.workloads import uniform_cube


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return np.random.default_rng(7).normal(size=(400, 8))


# ----------------------------------------------------------------------
# SQ8 encoder
# ----------------------------------------------------------------------


class TestSQ8Encoder:
    def test_round_trip_error_is_bounded_by_step(self, points):
        params = train_sq8(points)
        decoded = decode_sq8(params, encode_sq8(params, points))
        # Rounding to the nearest of 256 levels: error <= half a step.
        assert np.all(np.abs(decoded - points) <= params.scale / 2 + 1e-12)

    def test_constant_dimension_is_exact_not_nan(self):
        """Satellite guard: a zero-range dimension must not divide by
        zero — it round-trips exactly through a zero scale."""
        pts = np.random.default_rng(0).normal(size=(50, 3))
        pts[:, 1] = 4.25
        params = train_sq8(pts)
        assert params.constant_dims == 1
        codes = encode_sq8(params, pts)
        decoded = decode_sq8(params, codes)
        assert np.all(np.isfinite(decoded))
        assert np.array_equal(decoded[:, 1], np.full(50, 4.25))

    def test_all_constant_points_reject_at_dataset_level(self):
        # Duplicate points are rejected upstream (d_min = 0); the store
        # itself still never divides by zero on a fully constant matrix.
        pts = np.full((10, 2), 3.0)
        codes = encode_sq8(train_sq8(pts), pts)
        assert np.array_equal(codes, np.zeros((10, 2), dtype=np.uint8))

    def test_out_of_range_later_points_clamp(self, points):
        params = train_sq8(points)
        wild = np.full((2, points.shape[1]), 1e9)
        codes = encode_sq8(params, wild)
        assert np.array_equal(codes, np.full_like(codes, 255))

    def test_rejects_non_coordinate_points(self):
        with pytest.raises(StorageConfigError, match=r"\(n, d\) coordinate"):
            train_sq8(np.arange(10))

    def test_rejects_options(self, points):
        with pytest.raises(StorageConfigError, match="no options"):
            make_store("sq8", EuclideanMetric(), points, bogus=1)


# ----------------------------------------------------------------------
# PQ encoder
# ----------------------------------------------------------------------


class TestPQEncoder:
    def test_default_subspaces_divide_the_dimension(self):
        assert default_subspaces(8) == 8
        assert default_subspaces(12) == 6
        assert default_subspaces(7) == 7
        assert default_subspaces(26) == 2
        assert default_subspaces(1) == 1

    def test_indivisible_m_raises_named_error(self, points):
        with pytest.raises(StorageConfigError, match="must divide"):
            train_pq(points, m=3)

    def test_ks_over_256_raises_named_error(self, points):
        with pytest.raises(StorageConfigError, match="1..256"):
            train_pq(points, ks=512)

    def test_few_points_fall_back_to_ks_n(self):
        """Satellite guard: n < ks must fall back (ks_effective = n),
        never divide by zero on an empty cluster."""
        pts = np.random.default_rng(1).normal(size=(40, 4))
        params = train_pq(pts, ks=256)
        assert params.ks == 40 and params.ks_requested == 256
        codes = encode_pq(params, pts)
        assert codes.max() < 40
        # With every point its own candidate centroid the training data
        # reconstructs near-exactly.
        store = PQStore(EuclideanMetric(), params, codes)
        view = store.bind(pts[:3])
        d = view.segmented(np.array([0, 1, 2]), np.array([0, 1, 2]),
                           np.array([1, 1, 1]))
        assert np.all(d < 1e-6)

    def test_few_points_strict_raises_named_error(self):
        pts = np.random.default_rng(1).normal(size=(40, 4))
        with pytest.raises(QuantizerTrainingError, match="at least ks=256"):
            train_pq(pts, ks=256, strict=True)

    def test_training_is_deterministic(self, points):
        a = train_pq(points, seed=5)
        b = train_pq(points, seed=5)
        assert np.array_equal(a.codebooks, b.codebooks)

    def test_unsupported_metric_raises_named_error(self, points):
        from repro.metrics.base import ExplicitMatrixMetric

        params = train_pq(points)
        with pytest.raises(StorageConfigError, match="pq ADC supports"):
            PQStore(
                ExplicitMatrixMetric(np.zeros((2, 2))),
                params,
                encode_pq(params, points),
            )


# ----------------------------------------------------------------------
# View correctness: approximate distances track the exact metric
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "metric",
    [
        EuclideanMetric(),
        ChebyshevMetric(),
        MinkowskiMetric(3.0),
        ScaledMetric(EuclideanMetric(), 2.5),
    ],
    ids=["euclidean", "chebyshev", "minkowski3", "scaled-euclidean"],
)
@pytest.mark.parametrize("kind", ["sq8", "pq"])
def test_store_views_approximate_the_metric(points, kind, metric):
    store = make_store(kind, metric, points, seed=0)
    rng = np.random.default_rng(3)
    Q = rng.normal(size=(10, points.shape[1]))
    idx = rng.integers(len(points), size=50)
    lens = np.full(10, 5, dtype=np.int64)
    approx = store.bind(Q).segmented(np.arange(10), idx, lens)
    exact = metric.distances_many(Q, points[idx], lens)
    # 8-bit-per-dim scalar error is tiny; PQ with ks=256 over 400 points
    # is coarser but must still track the metric closely on this scale.
    tol = 0.05 if kind == "sq8" else 0.8
    assert np.all(np.abs(approx - exact) <= tol * (1.0 + exact))
    # scalar() agrees with segmented()
    assert store.bind(Q).scalar(0, int(idx[0])) == pytest.approx(approx[0])


def test_flat_store_is_exact(points):
    metric = EuclideanMetric()
    store = FlatStore(metric, points)
    Q = np.random.default_rng(4).normal(size=(4, points.shape[1]))
    idx = np.arange(12)
    lens = np.full(4, 3, dtype=np.int64)
    got = store.bind(Q).segmented(np.arange(4), idx, lens)
    want = metric.distances_many(Q, points[idx], lens)
    assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Engine construction path over a store
# ----------------------------------------------------------------------


def test_construction_beam_batch_traverses_a_store(points):
    """The construction engine's ``store`` hook: traversal over SQ8
    codes equals traversal over the dequantized points (the store view
    *is* the metric over decoded candidates), and a FlatStore equals
    the default exact path bit for bit."""
    from repro.graphs.engine import construction_beam_batch
    from repro.metrics.base import Dataset

    metric = EuclideanMetric()
    dataset = Dataset(metric, points)
    index = ProximityGraphIndex.build(
        points, epsilon=1.0, method="vamana", seed=0, normalize=False
    )
    graph = index.graph
    rng = np.random.default_rng(8)
    Q = rng.normal(size=(6, points.shape[1]))
    starts = rng.integers(len(points), size=6)

    plain = construction_beam_batch(graph, dataset, starts, Q, beam_width=12)
    via_flat = construction_beam_batch(
        graph, dataset, starts, Q, beam_width=12,
        store=FlatStore(metric, points),
    )
    for (ids_a, d_a), (ids_b, d_b) in zip(plain, via_flat):
        assert np.array_equal(ids_a, ids_b) and np.array_equal(d_a, d_b)

    store = make_store("sq8", metric, points)
    decoded = decode_sq8(store.params, store.codes)
    via_store = construction_beam_batch(
        graph, dataset, starts, Q, beam_width=12, store=store
    )
    over_decoded = construction_beam_batch(
        graph, Dataset(metric, decoded), starts, Q, beam_width=12
    )
    for (ids_a, d_a), (ids_b, d_b) in zip(via_store, over_decoded):
        assert np.array_equal(ids_a, ids_b) and np.array_equal(d_a, d_b)


# ----------------------------------------------------------------------
# Store lifecycle through the index: add() drift, compact() retrain
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["flat", "sq8", "pq"])
def test_add_encodes_through_frozen_store_and_counts_drift(kind):
    pts = uniform_cube(120, 3, np.random.default_rng(2))
    idx = ProximityGraphIndex.build(
        pts, epsilon=1.0, method="vamana", seed=1, storage=kind
    )
    before = idx.store.n
    new = idx.add(np.random.default_rng(3).uniform(size=(7, 3)))
    assert len(new) == 7
    assert idx.store.n == before + 7
    expected_drift = 0 if kind == "flat" else 7
    assert idx.store.drift == expected_drift
    assert idx.stats()["storage"]["drift"] == expected_drift
    # searches see the new points
    r = idx.search(np.asarray(idx.dataset.points)[-1], k=1,
                   params=SearchParams(beam_width=32))
    assert int(r.ids[0, 0]) == int(new[-1])


@pytest.mark.parametrize("kind", ["sq8", "pq"])
def test_compact_retrains_and_resets_drift(kind):
    pts = uniform_cube(120, 3, np.random.default_rng(2))
    idx = ProximityGraphIndex.build(
        pts, epsilon=1.0, method="vamana", seed=1, storage=kind
    )
    idx.add(np.random.default_rng(3).uniform(size=(5, 3)))
    idx.delete([0, 1])
    assert idx.store.drift == 5
    idx.compact()
    assert idx.store.drift == 0
    assert idx.store.n == 123
    assert idx.store.trained_on == 123


def test_set_storage_swaps_without_touching_the_graph():
    pts = uniform_cube(100, 3, np.random.default_rng(5))
    idx = ProximityGraphIndex.build(pts, epsilon=1.0, method="vamana", seed=1)
    edges_before = idx.graph.num_edges
    idx.set_storage("pq", m=3, ks=64)
    assert idx.store.kind == "pq" and idx.store.params.m == 3
    assert idx.graph.num_edges == edges_before
    idx.set_storage("flat")
    assert idx.store.kind == "flat"


# ----------------------------------------------------------------------
# Persistence v4: codes + codebooks + training stats round-trip
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["flat", "sq8", "pq"])
def test_v4_round_trip_preserves_store_and_answers(kind, tmp_path):
    pts = uniform_cube(150, 3, np.random.default_rng(9))
    idx = ProximityGraphIndex.build(
        pts, epsilon=1.0, method="vamana", seed=2, storage=kind
    )
    idx.add(np.random.default_rng(1).uniform(size=(4, 3)))
    queries = np.random.default_rng(4).uniform(size=(15, 3))
    p = SearchParams(seed=0, beam_width=32)
    want = idx.search(queries, k=5, params=p)
    loaded = ProximityGraphIndex.load(idx.save(tmp_path / "idx.npz"))
    assert loaded.store.kind == kind
    assert loaded.store.drift == idx.store.drift
    if kind != "flat":
        assert np.array_equal(loaded.store.codes, idx.store.codes)
        assert loaded.store.trained_on == idx.store.trained_on
    got = loaded.search(queries, k=5, params=p)
    assert np.array_equal(want.ids, got.ids)
    assert np.array_equal(want.distances, got.distances)


@pytest.mark.parametrize("kind", ["sq8", "pq"])
def test_sharded_save_load_preserves_shared_storage(kind, tmp_path):
    pts = uniform_cube(160, 3, np.random.default_rng(11))
    sharded = ShardedIndex.build(
        pts, epsilon=1.0, method="vamana", seed=3, shards=3, storage=kind
    )
    queries = np.random.default_rng(5).uniform(size=(12, 3))
    p = SearchParams(seed=0, beam_width=32)
    want = sharded.search(queries, k=5, params=p)
    loaded = ShardedIndex.load(sharded.save(tmp_path / "idx"))
    assert all(s.store.kind == kind for s in loaded.shards)
    got = loaded.search(queries, k=5, params=p)
    assert np.array_equal(want.ids, got.ids)
    assert np.array_equal(want.distances, got.distances)
    sharded.close()
    loaded.close()


def test_store_from_arrays_rejects_unknown_kind(points):
    with pytest.raises(StorageConfigError, match="unknown storage"):
        store_from_arrays({"kind": "zstd"}, {}, EuclideanMetric(), points)
    with pytest.raises(StorageConfigError, match="unknown storage"):
        make_store("zstd", EuclideanMetric(), points)
    with pytest.raises(StorageConfigError, match="unknown storage"):
        train_store_params("zstd", points)


# ----------------------------------------------------------------------
# Shared codebooks across shards
# ----------------------------------------------------------------------


def test_flat_rerank_overfetch_neither_recomputes_nor_recharges():
    """With exact (flat) storage an explicit rerank_factor > 1 must not
    re-evaluate the pool: the traversal distances are already exact, so
    evals match the plain search and the top-k is unchanged."""
    pts = uniform_cube(150, 3, np.random.default_rng(21))
    idx = ProximityGraphIndex.build(pts, epsilon=1.0, method="vamana", seed=2)
    queries = np.random.default_rng(22).uniform(size=(10, 3))
    plain = idx.search(queries, k=5, params=SearchParams(beam_width=32, seed=0))
    rerank = idx.search(
        queries, k=5,
        params=SearchParams(beam_width=32, seed=0, rerank_factor=2),
    )
    assert np.array_equal(plain.evals, rerank.evals)
    assert np.array_equal(plain.ids, rerank.ids)
    assert np.array_equal(plain.distances, rerank.distances)


def test_sharded_compact_restores_shared_codebooks():
    """Compaction must leave every shard on ONE training state, like the
    build — per-shard retraining would diverge the fan-out geometry."""
    pts = uniform_cube(200, 4, np.random.default_rng(23))
    sharded = ShardedIndex.build(
        pts, epsilon=1.0, method="vamana", seed=3, shards=2, storage="pq",
        storage_options={"ks": 32},
    )
    try:
        sharded.delete([int(sharded.shards[0].id_map.externals[0])])
        sharded.compact()
        a, b = (s.store.params.codebooks for s in sharded.shards)
        assert np.array_equal(a, b)
        assert len({s.store.trained_on for s in sharded.shards}) == 1
        assert all(s.store.drift == 0 for s in sharded.shards)
    finally:
        sharded.close()


def test_sharded_set_storage_flat_rejects_options():
    pts = uniform_cube(100, 3, np.random.default_rng(24))
    sharded = ShardedIndex.build(pts, epsilon=1.0, method="vamana", seed=1,
                                 shards=2)
    try:
        with pytest.raises(StorageConfigError, match="unknown flat options"):
            sharded.set_storage("flat", m=4)
    finally:
        sharded.close()


def test_both_front_doors_reject_flat_storage_options():
    """build(storage='flat', storage_options=...) must fail identically
    for the flat and sharded kinds — never silently drop the options.
    (``dtype`` is the one valid flat option; anything else rejects.)"""
    pts = uniform_cube(100, 3, np.random.default_rng(25))
    with pytest.raises(StorageConfigError, match="unknown flat options"):
        ProximityGraphIndex.build(
            pts, method="vamana", storage="flat", storage_options={"m": 4}
        )
    with pytest.raises(StorageConfigError, match="unknown flat options"):
        ShardedIndex.build(
            pts, method="vamana", shards=2, storage="flat",
            storage_options={"m": 4},
        )


def test_sharded_build_fails_fast_on_bad_quantizer_config():
    """A bad pq config must raise BEFORE the (expensive, possibly
    multi-process) graph build runs, not after."""
    pts = uniform_cube(100, 4, np.random.default_rng(26))
    import repro.core.sharded as sharded_module

    def boom(*a, **k):  # the build must never be reached
        raise AssertionError("graph build ran before config validation")

    orig = sharded_module.partition_points
    sharded_module.partition_points = boom
    try:
        with pytest.raises(StorageConfigError, match="must divide"):
            ShardedIndex.build(
                pts, method="vamana", shards=2, storage="pq",
                storage_options={"m": 3},
            )
        with pytest.raises(StorageConfigError, match="unknown pq options"):
            ShardedIndex.build(
                pts, method="vamana", shards=2, storage="pq",
                storage_options={"centroids": 9},
            )
    finally:
        sharded_module.partition_points = orig


def test_flat_build_fails_fast_on_bad_quantizer_config():
    """Same fail-fast contract for the flat front door."""
    pts = uniform_cube(100, 4, np.random.default_rng(27))
    import repro.core.index as index_module

    orig = index_module.build

    def boom(*a, **k):  # the graph build must never be reached
        raise AssertionError("graph build ran before config validation")

    index_module.build = boom
    try:
        with pytest.raises(StorageConfigError, match="must divide"):
            ProximityGraphIndex.build(
                pts, method="vamana", storage="pq", storage_options={"m": 3}
            )
    finally:
        index_module.build = orig


def test_sharded_quantized_fanout_workers_match_in_process():
    """The pooled fan-out (codes shipped by shared-memory arena or
    inline, ADC rebuilt in each worker) answers exactly like the
    in-process fan-out over the same shards."""
    pts = uniform_cube(240, 4, np.random.default_rng(17))
    queries = np.random.default_rng(18).uniform(size=(9, 4))
    p = SearchParams(beam_width=32, seed=0)
    pooled = ShardedIndex.build(
        pts, epsilon=1.0, method="vamana", seed=3, shards=2, workers=2,
        storage="pq", storage_options={"ks": 32},
    )
    try:
        want = pooled.search(queries, k=5, params=p)
        pooled.workers = 1
        got = pooled.search(queries, k=5, params=p)
        assert np.array_equal(want.ids, got.ids)
        assert np.array_equal(want.distances, got.distances)
    finally:
        pooled.close()


def test_sharded_build_trains_codebooks_once():
    pts = uniform_cube(200, 4, np.random.default_rng(13))
    sharded = ShardedIndex.build(
        pts, epsilon=1.0, method="vamana", seed=3, shards=4, storage="pq",
        storage_options={"ks": 64},
    )
    books = [s.store.params.codebooks for s in sharded.shards]
    for other in books[1:]:
        assert books[0] is other or np.array_equal(books[0], other)
    # trained over the whole collection, not the shard
    assert all(s.store.trained_on == 200 for s in sharded.shards)
    sharded.close()


# ----------------------------------------------------------------------
# Flat float32 traversal storage
# ----------------------------------------------------------------------


class TestFlatFloat32:
    """``FlatStore(dtype="float32")``: traversal over a half-width copy,
    exact float64 rerank, dtype recorded in the wire form."""

    def _build_pair(self, n=500, d=12, seed=3):
        pts = np.random.default_rng(5).normal(size=(n, d))
        f64 = ProximityGraphIndex.build(pts, method="vamana", seed=seed)
        f32 = ProximityGraphIndex.build(
            pts, method="vamana", seed=seed,
            storage="flat", storage_options={"dtype": "float32"},
        )
        return pts, f64, f32

    def test_option_validation(self, points):
        with pytest.raises(StorageConfigError, match="flat dtype"):
            make_store("flat", EuclideanMetric(), points, dtype="float16")
        with pytest.raises(StorageConfigError, match="unknown flat options"):
            make_store("flat", EuclideanMetric(), points, bits=32)
        with pytest.raises(StorageConfigError, match="flat dtype"):
            FlatStore(EuclideanMetric(), points, dtype="f32")
        # sq8 stays option-free
        with pytest.raises(StorageConfigError, match="no options"):
            make_store("sq8", EuclideanMetric(), points, dtype="float32")

    def test_store_shape(self, points):
        st = make_store("flat", EuclideanMetric(), points, dtype="float32")
        assert st.is_quantized  # two-stage search: traverse f32, rerank f64
        assert st.codes is None
        assert st.spec() == {"kind": "flat", "dtype": "float32"}
        assert np.asarray(st.bind(points[:2]).points).dtype == np.float32
        f64 = make_store("flat", EuclideanMetric(), points)
        assert not f64.is_quantized and f64.spec() == {"kind": "flat"}
        # traversal-resident bytes are halved
        assert st.traversal_bytes_per_vector() == f64.traversal_bytes_per_vector() / 2
        # lifecycle preserves the dtype
        ds = type("DS", (), {"metric": EuclideanMetric(), "points": points})
        assert st.refresh(ds, 0).dtype == "float32"
        assert st.retrained(ds, 0).dtype == "float32"

    def test_recall_delta_vs_float64_is_pinned(self):
        """The recall cost of float32 rounding is bounded by ~1e-7
        relative distance error: recall@10 may not drop more than one
        percentage point below the float64 build on the same data."""
        pts, f64, f32 = self._build_pair()
        queries = np.random.default_rng(6).normal(size=(40, 12))
        p = SearchParams(beam_width=48, seed=0)
        exact = np.linalg.norm(pts[None, :, :] - queries[:, None, :], axis=2)
        gt = np.argsort(exact, axis=1, kind="stable")[:, :10]
        def recall(res):
            return np.mean([
                len(set(res.ids[i].tolist()) & set(gt[i].tolist())) / 10
                for i in range(len(queries))
            ])
        r64 = recall(f64.search(queries, k=10, params=p))
        r32 = recall(f32.search(queries, k=10, params=p))
        assert r32 >= r64 - 0.01

    def test_reported_distances_stay_exact_float64(self):
        pts, _, f32 = self._build_pair(n=300)
        queries = np.random.default_rng(8).normal(size=(7, 12))
        res = f32.search(queries, k=5, params=SearchParams(beam_width=32, seed=0))
        for i in range(len(queries)):
            for j in range(5):
                pid = int(res.ids[i, j])
                want = float(np.linalg.norm(pts[pid] - queries[i]))
                assert res.distances[i, j] == pytest.approx(want, abs=1e-12)

    def test_v4_and_v5_round_trip_record_dtype(self, tmp_path):
        pts, _, f32 = self._build_pair(n=250)
        queries = np.random.default_rng(9).normal(size=(5, 12))
        p = SearchParams(beam_width=32, seed=0)
        want = f32.search(queries, k=5, params=p)
        v4 = ProximityGraphIndex.load(f32.save(tmp_path / "idx.npz"))
        assert v4.store.dtype == "float32" and v4.store.is_quantized
        got = v4.search(queries, k=5, params=p)
        assert np.array_equal(want.ids, got.ids)
        assert np.array_equal(want.distances, got.distances)
        v5 = ProximityGraphIndex.load(f32.save(tmp_path / "disk", format="disk"))
        inner = getattr(v5.store, "inner", v5.store)
        assert inner.dtype == "float32"
        got5 = v5.search(queries, k=5, params=p)
        assert np.array_equal(want.ids, got5.ids)
        assert np.array_equal(want.distances, got5.distances)

    def test_sharded_fanout_and_snapshot_keep_dtype(self):
        pts = uniform_cube(240, 4, np.random.default_rng(21))
        queries = np.random.default_rng(22).uniform(size=(9, 4))
        p = SearchParams(beam_width=32, seed=0)
        sharded = ShardedIndex.build(
            pts, epsilon=1.0, method="vamana", seed=3, shards=2, workers=2,
            storage="flat", storage_options={"dtype": "float32"},
        )
        try:
            assert all(s.store.dtype == "float32" for s in sharded.shards)
            want = sharded.search(queries, k=5, params=p)
            sharded.workers = 1
            got = sharded.search(queries, k=5, params=p)
            assert np.array_equal(want.ids, got.ids)
            assert np.array_equal(want.distances, got.distances)
            snap = sharded.snapshot()
        finally:
            sharded.close()
        # the snapshot owns its arrays and keeps the traversal dtype
        assert all(s.store.dtype == "float32" for s in snap.shards)
        after = snap.search(queries, k=5, params=p)
        assert np.array_equal(want.ids, after.ids)

    def test_accel_explicit_backend_rejects_auto_falls_back(self):
        """Compiled kernels are float64-only: an explicit backend on a
        float32 flat store raises the workload error, ``auto`` silently
        runs the numpy engines."""
        from repro import accel

        pts, _, f32 = self._build_pair(n=200)
        queries = np.random.default_rng(11).normal(size=(4, 12))
        try:
            accel.warm("python")
            with pytest.raises(accel.UnsupportedWorkloadError, match="float64"):
                f32.search(
                    queries, k=3,
                    params=SearchParams(seed=0, backend="python"),
                )
            res = f32.search(
                queries, k=3, params=SearchParams(seed=0, backend="auto")
            )
            assert (res.ids >= 0).all()
        finally:
            accel.reset()
