"""Search-path edge cases across all three stores, for both index kinds.

The satellite contract of the storage PR: every (storage, kind)
combination keeps the never-raising front-door semantics — empty
``allowed_ids``, a fully tombstoned collection, ``k`` larger than the
live point count — and ``rerank_factor=1`` pins down the two-stage
pipeline's no-over-fetch behavior.  The FlatStore bit-identity class at
the bottom is the acceptance pin: with flat storage, ``search()``
reproduces the raw pre-storage-layer engine calls bit for bit across 3
seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ProximityGraphIndex, SearchParams, ShardedIndex
from repro.graphs.engine import beam_search_batch, greedy_batch
from repro.workloads import uniform_cube

KINDS = ["flat", "sharded"]
STORAGES = ["flat", "sq8", "pq"]


def _build(kind: str, storage: str, n: int = 90, seed: int = 1):
    pts = uniform_cube(n, 3, np.random.default_rng(seed))
    if kind == "flat":
        return ProximityGraphIndex.build(
            pts, epsilon=1.0, method="vamana", seed=seed, storage=storage
        )
    return ShardedIndex.build(
        pts, epsilon=1.0, method="vamana", seed=seed, shards=3, storage=storage
    )


@pytest.fixture(scope="module")
def queries() -> np.ndarray:
    return np.random.default_rng(6).uniform(size=(8, 3))


@pytest.mark.parametrize("storage", STORAGES)
@pytest.mark.parametrize("kind", KINDS)
class TestEdgeCases:
    def test_empty_allowed_ids_returns_padding(self, kind, storage, queries):
        index = _build(kind, storage)
        r = index.search(queries, k=3, params=SearchParams(allowed_ids=[]))
        assert r.ids.shape == (len(queries), 3)
        assert np.all(r.ids == -1) and np.all(np.isinf(r.distances))

    def test_fully_tombstoned_never_raises(self, kind, storage, queries):
        index = _build(kind, storage)
        index.delete(np.arange(index.n))
        r = index.search(queries, k=2)
        assert np.all(r.ids == -1) and np.all(np.isinf(r.distances))

    def test_k_larger_than_live_points_pads(self, kind, storage, queries):
        index = _build(kind, storage)
        keep = 4
        index.delete(np.arange(keep, index.n))
        r = index.search(
            queries, k=10, params=SearchParams(beam_width=64, seed=0)
        )
        assert r.ids.shape == (len(queries), 10)
        # every live point found, the rest padded
        for i in range(len(queries)):
            found = r.ids[i][r.ids[i] >= 0]
            assert set(found.tolist()) == set(range(keep))
            assert np.all(r.ids[i, keep:] == -1)
            assert np.all(np.isinf(r.distances[i, keep:]))

    def test_empty_batch_never_raises(self, kind, storage):
        index = _build(kind, storage)
        r = index.search([], k=3)
        assert r.ids.shape == (0, 3)

    def test_rerank_factor_one(self, kind, storage, queries):
        """rerank_factor=1 means *no over-fetch*: flat storage answers
        bit-identically to the default search, quantized storage keeps
        the plain traversal's candidate ids and only replaces their
        approximate distances with exact ones."""
        index = _build(kind, storage)
        p1 = SearchParams(beam_width=32, seed=0, rerank_factor=1)
        r1 = index.search(queries, k=5, params=p1)
        if storage == "flat":
            r0 = index.search(
                queries, k=5, params=SearchParams(beam_width=32, seed=0)
            )
            assert np.array_equal(r0.ids, r1.ids)
            assert np.array_equal(r0.distances, r1.distances)
            return
        if kind == "sharded":
            # The fan-out must agree with merging the per-shard answers.
            parts = [
                s.search(queries, k=5, params=p1) for s in index.shards
            ]
            for i in range(len(queries)):
                merged = sorted(
                    (float(d), int(v))
                    for part in parts
                    for v, d in zip(part.ids[i], part.distances[i])
                    if v >= 0
                )[:5]
                assert [v for _, v in merged] == r1.ids[i].tolist()
            return
        # Flat kind, quantized storage: ids equal the raw compressed
        # traversal's top-5; distances are the exact metric's.
        gen = np.random.default_rng(index.seed)
        starts = gen.integers(index.n, size=len(queries))
        found = beam_search_batch(
            index.graph, index.dataset, starts, queries,
            beam_width=32, k=5, store=index.store,
        )
        for i, (pairs, _ev) in enumerate(found):
            approx_ids = [v for v, _ in pairs]
            exact = index.dataset.distances_to_query(
                queries[i], np.asarray(approx_ids, dtype=np.intp)
            )
            order = np.lexsort((approx_ids, exact))
            assert [approx_ids[j] for j in order] == r1.ids[i].tolist()
            assert np.allclose(np.sort(exact) / index.scale,
                               r1.distances[i])

    def test_reported_distances_are_exact(self, kind, storage, queries):
        """Quantized or not, returned distances equal the true metric
        distance to the returned id — rerank guarantees exactness."""
        index = _build(kind, storage)
        r = index.search(queries, k=3, params=SearchParams(beam_width=32, seed=0))
        pts = (
            np.asarray(index.dataset.points)
            if kind == "flat"
            else np.concatenate(
                [np.asarray(s.dataset.points) for s in index.shards]
            )
        )
        ids_all = (
            np.asarray(index.id_map.externals)
            if kind == "flat"
            else np.concatenate(
                [np.asarray(s.id_map.externals) for s in index.shards]
            )
        )
        lookup = {int(e): pts[i] for i, e in enumerate(ids_all)}
        for i in range(len(queries)):
            for v, d in zip(r.ids[i], r.distances[i]):
                if v < 0:
                    continue
                true = float(np.linalg.norm(queries[i] - lookup[int(v)]))
                assert d == pytest.approx(true, rel=1e-9)


@pytest.mark.parametrize("storage", ["sq8", "pq"])
def test_quantized_greedy_mode_reports_exact_distance(storage, queries):
    index = _build("flat", storage)
    r = index.search(queries, k=1, params=SearchParams(mode="greedy", seed=0))
    assert r.hops is not None
    pts = np.asarray(index.dataset.points)
    for i in range(len(queries)):
        v = int(r.ids[i, 0])
        assert r.distances[i, 0] == pytest.approx(
            float(np.linalg.norm(queries[i] - pts[v])), rel=1e-9
        )


class TestFlatStoreBitIdentity:
    """Acceptance pin: flat-storage search() == the raw engine calls the
    facade made before the storage layer existed, across 3 seeds."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_beam_path(self, seed):
        pts = uniform_cube(150, 3, np.random.default_rng(seed))
        index = ProximityGraphIndex.build(
            pts, epsilon=1.0, method="vamana", seed=seed
        )
        queries = np.random.default_rng(seed + 10).uniform(size=(20, 3))
        gen = np.random.default_rng(index.seed)
        starts = gen.integers(index.n, size=len(queries))
        r = index.search(queries, k=5, params=SearchParams(beam_width=24))
        found = beam_search_batch(
            index.graph, index.dataset, starts, queries, beam_width=24, k=5
        )
        for i, (pairs, ev) in enumerate(found):
            assert r.evals[i] == ev
            assert r.ids[i].tolist() == [v for v, _ in pairs]
            assert np.array_equal(
                r.distances[i], np.array([d for _, d in pairs]) / index.scale
            )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_beam_path_narrower_than_k(self, seed):
        """An explicit beam_width < k must behave exactly as before the
        storage layer: the pool stays at width, results pad past it."""
        pts = uniform_cube(150, 3, np.random.default_rng(seed))
        index = ProximityGraphIndex.build(
            pts, epsilon=1.0, method="vamana", seed=seed
        )
        queries = np.random.default_rng(seed + 30).uniform(size=(12, 3))
        starts = np.random.default_rng(index.seed).integers(
            index.n, size=len(queries)
        )
        r = index.search(queries, k=10, params=SearchParams(beam_width=4))
        found = beam_search_batch(
            index.graph, index.dataset, starts, queries, beam_width=4, k=10
        )
        for i, (pairs, ev) in enumerate(found):
            assert r.evals[i] == ev
            take = len(pairs)
            assert r.ids[i, :take].tolist() == [v for v, _ in pairs]
            assert np.all(r.ids[i, take:] == -1)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_greedy_path(self, seed):
        pts = uniform_cube(150, 3, np.random.default_rng(seed))
        index = ProximityGraphIndex.build(
            pts, epsilon=1.0, method="vamana", seed=seed
        )
        queries = np.random.default_rng(seed + 20).uniform(size=(20, 3))
        gen = np.random.default_rng(index.seed)
        starts = gen.integers(index.n, size=len(queries))
        r = index.search(queries)
        results = greedy_batch(index.graph, index.dataset, starts, queries)
        assert r.ids[:, 0].tolist() == [g.point for g in results]
        assert np.array_equal(
            r.distances[:, 0],
            np.array([g.distance for g in results]) / index.scale,
        )
        assert r.evals.tolist() == [g.distance_evals for g in results]
