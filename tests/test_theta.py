"""Tests for theta-graphs (Section 5.1) and Lemma 5.1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    build_cone_family,
    build_theta_graph,
    find_violations,
    theta_for_epsilon,
)
from repro.metrics import Dataset, EuclideanMetric
from tests.conftest import mixed_queries


class TestThetaForEpsilon:
    def test_lemma_5_1_angle(self):
        assert theta_for_epsilon(1.0) == pytest.approx(1 / 32)
        assert theta_for_epsilon(0.5) == pytest.approx(1 / 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            theta_for_epsilon(0.0)


class TestEdgeDefinition:
    def test_nearest_point_on_ray_bruteforce(self, rng):
        """Each edge target must minimize the projection onto the cone's
        designated ray among the cone's members — checked from scratch."""
        pts = rng.uniform(0, 100, size=(40, 2))
        ds = Dataset(EuclideanMetric(), pts)
        fam = build_cone_family(theta=0.7, dim=2)
        res = build_theta_graph(ds, theta=0.7, method="vectorized", cones=fam)
        cos_half = np.cos(fam.half_angle)
        for p in range(ds.n):
            want: set[int] = set()
            diff = pts - pts[p]
            norms = np.linalg.norm(diff, axis=1)
            for k in range(fam.num_cones):
                proj = diff @ fam.axes[k]
                inside = (proj >= cos_half * norms - 1e-12) & (norms > 0)
                if inside.any():
                    cand = np.flatnonzero(inside)
                    want.add(int(cand[np.argmin(proj[cand])]))
            assert set(map(int, res.graph.out_neighbors(p))) == want

    def test_sweep_matches_vectorized(self, rng):
        pts = rng.uniform(0, 50, size=(120, 2))
        ds = Dataset(EuclideanMetric(), pts)
        a = build_theta_graph(ds, theta=0.5, method="sweep")
        b = build_theta_graph(ds, theta=0.5, method="vectorized", cones=a.cones)
        assert a.graph == b.graph

    def test_sweep_matches_vectorized_fine_angle(self, rng):
        pts = rng.normal(size=(80, 2)) * 10
        ds = Dataset(EuclideanMetric(), pts)
        a = build_theta_graph(ds, theta=0.12, method="sweep")
        b = build_theta_graph(ds, theta=0.12, method="vectorized", cones=a.cones)
        assert a.graph == b.graph

    def test_out_degree_bounded_by_cone_count(self, rng):
        pts = rng.uniform(size=(60, 2)) * 30
        ds = Dataset(EuclideanMetric(), pts)
        res = build_theta_graph(ds, theta=0.4)
        assert res.graph.max_out_degree() <= res.cones.num_cones

    def test_edges_linear_in_n(self, rng):
        """O((1/theta)^(d-1) * n) edges — no log Delta factor."""
        theta = 0.4
        counts = {}
        for n in [50, 100, 200]:
            pts = rng.uniform(size=(n, 2)) * 100
            ds = Dataset(EuclideanMetric(), pts)
            counts[n] = build_theta_graph(ds, theta=theta).graph.num_edges
        assert counts[200] <= 2 * counts[100] * 1.5
        assert counts[100] <= 2 * counts[50] * 1.5

    def test_sweep_requires_2d(self, rng):
        pts = rng.uniform(size=(10, 3))
        ds = Dataset(EuclideanMetric(), pts)
        with pytest.raises(ValueError, match="2-D"):
            build_theta_graph(ds, theta=0.5, method="sweep")

    def test_requires_coordinates(self):
        from repro.metrics import TreeMetric

        ds = Dataset(TreeMetric(4), np.arange(16, dtype=np.int64))
        with pytest.raises(ValueError, match="coordinate"):
            build_theta_graph(ds, theta=0.5)


class TestLemma51Navigability:
    def test_theta_graph_is_proximity_graph(self, rng):
        """Lemma 5.1: the (eps/32)-graph is (1+eps)-navigable.  Full
        prescribed angle on a small input (202 cones at eps=1)."""
        eps = 1.0
        pts = rng.uniform(0, 40, size=(50, 2))
        ds = Dataset(EuclideanMetric(), pts)
        res = build_theta_graph(ds, theta=theta_for_epsilon(eps), method="sweep")
        queries = mixed_queries(ds, rng, m=24)
        assert find_violations(res.graph, ds, queries, eps, stop_at=None) == []

    def test_3d_theta_graph_navigable_generous_angle(self, rng):
        """In 3-D with a moderate angle the graph is still navigable at a
        correspondingly generous epsilon (theta = eps/32)."""
        eps = 1.0
        pts = rng.uniform(0, 20, size=(35, 3))
        ds = Dataset(EuclideanMetric(), pts)
        res = build_theta_graph(ds, theta=theta_for_epsilon(eps), method="vectorized")
        queries = [rng.uniform(-5, 25, size=3) for _ in range(10)]
        assert find_violations(res.graph, ds, queries, eps, stop_at=None) == []

    def test_huge_angle_eventually_fails(self, rng):
        """Ablation sanity: with absurdly wide cones (theta >> eps/32) the
        navigability guarantee must eventually break on some input.

        We use the known bad configuration for coarse theta-graphs: points
        on a circle arc where the cone's nearest-on-ray choice walks away
        from the query."""
        eps = 0.05
        # Adversarial-ish: dense ring + center cluster.
        angles = np.linspace(0, 2 * np.pi, 60, endpoint=False)
        ring = np.stack([np.cos(angles), np.sin(angles)], axis=1) * 100
        inner = rng.normal(size=(20, 2))
        ds = Dataset(EuclideanMetric(), np.vstack([ring, inner]))
        res = build_theta_graph(ds, theta=2.0, method="vectorized")
        queries = mixed_queries(ds, rng, m=40)
        assert (
            find_violations(res.graph, ds, queries, eps, stop_at=1) != []
        ), "expected the far-too-coarse theta-graph to violate somewhere"
