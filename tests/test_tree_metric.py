"""Tests for the Section 3 tree metric (ultrametric on binary-tree leaves)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import Dataset, TreeMetric, lca_level


class TestLcaLevel:
    def test_siblings(self):
        assert lca_level(0, 1) == 1

    def test_cousins(self):
        assert lca_level(0, 2) == 2
        assert lca_level(1, 3) == 2

    def test_opposite_halves(self):
        assert lca_level(0, 8) == 4

    @given(st.integers(0, 1023), st.integers(0, 1023))
    @settings(max_examples=100, deadline=None)
    def test_matches_bit_definition(self, v1, v2):
        assert lca_level(v1, v2) == (v1 ^ v2).bit_length()


class TestTreeMetric:
    def test_distance_is_power_of_two_of_lca_level(self):
        m = TreeMetric(height=5)
        assert m.distance(0, 1) == 2.0
        assert m.distance(0, 2) == 4.0
        assert m.distance(0, 16) == 32.0
        assert m.distance(7, 7) == 0.0

    def test_path_weight_interpretation(self):
        # Leaf edges weigh 1, the level-(l) edge weighs 2^(l-1); the
        # closed form must match the explicit path sum.
        m = TreeMetric(height=4)
        for v1, v2 in [(0, 1), (0, 3), (5, 12), (0, 15)]:
            level = lca_level(v1, v2)
            path = 2 * (1 + sum(2 ** (k - 1) for k in range(1, level)))
            assert m.distance(v1, v2) == path

    def test_batch_matches_scalar(self, rng):
        m = TreeMetric(height=8)
        leaves = rng.integers(0, m.num_leaves, size=40)
        a = int(leaves[0])
        batch = m.distances(a, leaves)
        for i, b in enumerate(leaves):
            assert batch[i] == m.distance(a, int(b))

    def test_min_interpoint_distance_is_two(self):
        m = TreeMetric(height=3)
        ds = Dataset(m, np.arange(m.num_leaves))
        assert ds.min_interpoint_distance() == 2.0
        assert ds.diameter() == 2.0**3

    def test_rejects_bad_height(self):
        with pytest.raises(ValueError):
            TreeMetric(height=0)
        with pytest.raises(ValueError):
            TreeMetric(height=70)

    def test_rejects_out_of_range_leaf(self):
        m = TreeMetric(height=3)
        with pytest.raises(ValueError):
            m.distance(0, 8)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=100, deadline=None)
    def test_ultrametric_inequality(self, a, b, c):
        """Strong triangle inequality: D(a,b) <= max(D(a,c), D(b,c))."""
        m = TreeMetric(height=8)
        assert m.distance(a, b) <= max(m.distance(a, c), m.distance(b, c))

    def test_axioms_on_sample(self, rng):
        m = TreeMetric(height=10)
        leaves = rng.choice(m.num_leaves, size=20, replace=False)
        m.check_axioms(leaves.astype(np.int64))

    def test_doubling_dimension_constant(self):
        assert TreeMetric.DOUBLING_DIMENSION == 1.0

    def test_ball_splits_into_two_half_balls(self, rng):
        """Appendix C's argument, checked concretely: every ball equals a
        subtree's leaves and is covered by two balls of half radius."""
        m = TreeMetric(height=6)
        all_leaves = np.arange(m.num_leaves)
        for _ in range(20):
            p = int(rng.integers(m.num_leaves))
            level = int(rng.integers(1, 7))
            r = float(2**level)
            ball = all_leaves[m.distances(p, all_leaves) <= r]
            # two children subtrees' leftmost leaves as half-ball centers
            prefix = p >> level
            left = (prefix << 1) << (level - 1)
            right = ((prefix << 1) | 1) << (level - 1)
            cover = set()
            for c in (left, right):
                cover.update(all_leaves[m.distances(c, all_leaves) <= r / 2])
            assert set(ball).issubset(cover)


class TestTreeNavigationHelpers:
    def test_subtree_leaves(self):
        m = TreeMetric(height=4)
        leaves = m.subtree_leaves(2, 1)  # node at level 2, prefix 1
        assert list(leaves) == [4, 5, 6, 7]

    def test_leftmost_leaf(self):
        m = TreeMetric(height=4)
        assert m.leftmost_leaf_of_subtree(3, 1) == 8

    def test_ancestor_prefix_roundtrip(self):
        m = TreeMetric(height=5)
        for leaf in [0, 7, 19, 31]:
            for level in range(6):
                prefix = m.ancestor_prefix(leaf, level)
                assert leaf in set(m.subtree_leaves(level, prefix))
