"""The strict-typing gate on core/, storage/, serve/, analysis/.

Two layers enforce the same contract:

* the linter's ``typing-complete`` rule (always runnable — stdlib
  only), exercised here over the live tree;
* pinned mypy with the ``[tool.mypy]`` config in pyproject.toml,
  exercised when mypy is importable (it is in CI; this environment may
  not ship it, in which case that half skips).
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import LintConfig, lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
TYPED_PACKAGES = ("core", "storage", "serve", "analysis")


def test_typed_surface_passes_typing_complete() -> None:
    """Every def in the typed packages carries full annotations."""
    paths = [REPO_ROOT / "src" / "repro" / pkg for pkg in TYPED_PACKAGES]
    report = lint_paths(
        paths, config=LintConfig(select=frozenset({"typing-complete"}))
    )
    assert report.files_checked > 10
    offenders = [f.render() for f in report.unsuppressed]
    assert offenders == [], "\n".join(offenders)


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed in this environment (runs in CI)",
)
def test_typed_surface_passes_pinned_mypy() -> None:
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={**os.environ, "MYPYPATH": str(REPO_ROOT / "src")},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
