"""Tests for the exhaustive validator and failure-injection machinery —
including the Fact 2.1 cross-check that ties the local and behavioral
definitions together on both healthy and corrupted graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import build_knn_digraph
from repro.graphs import build_gnet
from repro.graphs.validate import (
    corrupt_graph,
    exhaustive_greedy_check,
    validate_proximity_graph,
)
from repro.lowerbounds import build_tree_instance
from repro.metrics import Dataset, EuclideanMetric
from repro.workloads import make_dataset, uniform_cube


class TestExhaustiveGreedyCheck:
    def test_clean_gnet_passes_all_starts(self, rng):
        ds = make_dataset(uniform_cube(50, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        queries = [rng.uniform(0, 20, size=2) for _ in range(5)]
        assert exhaustive_greedy_check(
            res.graph, ds, queries, 1.0, stop_at=None
        ) == []

    def test_two_cluster_knn_fails_with_witness(self, rng):
        a = rng.normal(0, 0.02, size=(15, 2))
        b = rng.normal(0, 0.02, size=(15, 2)) + np.array([8.0, 0.0])
        ds = Dataset(EuclideanMetric(), np.vstack([a, b]))
        g = build_knn_digraph(ds, k=4)
        failures = exhaustive_greedy_check(
            g, ds, [np.array([8.0, 0.0])], 0.5, stop_at=None
        )
        assert failures
        f = failures[0]
        assert f.returned_distance > 1.5 * f.nn_distance
        assert f.start < 15  # stranded in the far cluster

    def test_custom_starts(self, rng):
        ds = make_dataset(uniform_cube(30, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        out = exhaustive_greedy_check(
            res.graph, ds, [rng.uniform(size=2)], 1.0, starts=[0, 5], stop_at=None
        )
        assert out == []

    def test_stop_at_short_circuits(self, rng):
        a = rng.normal(0, 0.02, size=(10, 2))
        b = rng.normal(0, 0.02, size=(10, 2)) + np.array([8.0, 0.0])
        ds = Dataset(EuclideanMetric(), np.vstack([a, b]))
        g = build_knn_digraph(ds, k=3)
        failures = exhaustive_greedy_check(
            g, ds, [np.array([8.0, 0.0])], 0.5, stop_at=2
        )
        assert len(failures) == 2


class TestCrossCheck:
    def test_report_on_clean_graph(self, rng):
        ds = make_dataset(uniform_cube(40, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        report = validate_proximity_graph(
            res.graph, ds, [rng.uniform(0, 20, size=2) for _ in range(4)], 1.0
        )
        assert report["is_proximity_graph_on_sample"]
        assert report["local_violations"] == 0
        assert report["greedy_failures"] == 0

    def test_report_on_broken_graph(self, rng):
        a = rng.normal(0, 0.02, size=(12, 2))
        b = rng.normal(0, 0.02, size=(12, 2)) + np.array([8.0, 0.0])
        ds = Dataset(EuclideanMetric(), np.vstack([a, b]))
        g = build_knn_digraph(ds, k=4)
        report = validate_proximity_graph(g, ds, [np.array([8.0, 0.0])], 0.5)
        assert not report["is_proximity_graph_on_sample"]
        assert report["local_violations"] > 0
        assert report["greedy_failures"] > 0

    def test_fact_2_1_equivalence_on_finite_universe(self):
        """On the tree instance, where every metric point can be
        enumerated, both views must agree exactly — the complete decision
        procedure for 'is G a 2-PG'."""
        inst = build_tree_instance(4, 16, strict=False)
        res = build_gnet(inst.dataset, epsilon=1.0, method="vectorized")
        report = validate_proximity_graph(
            res.graph,
            inst.dataset,
            list(inst.all_metric_points()),
            epsilon=1.0,
        )
        assert report["is_proximity_graph_on_sample"]


class TestFailureInjection:
    def test_corrupt_graph_reduces_edges(self, rng):
        ds = make_dataset(uniform_cube(60, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        bad = corrupt_graph(res.graph, rng, drop_fraction=0.9, victims=30)
        assert bad.num_edges < res.graph.num_edges
        assert res.graph.num_edges == build_gnet(ds, epsilon=1.0).graph.num_edges

    def test_detectors_fire_on_heavy_corruption(self):
        """Heavy corruption of a G_net should be caught by the validator
        (near-data queries make the (1+eps) contract demanding)."""
        rng = np.random.default_rng(77)
        ds = make_dataset(uniform_cube(60, 2, rng))
        res = build_gnet(ds, epsilon=0.25)
        bad = corrupt_graph(res.graph, rng, drop_fraction=1.0, victims=55)
        pts = np.asarray(ds.points)
        queries = [pts[i] + rng.normal(size=2) * 1e-6 for i in range(0, 60, 2)]
        report = validate_proximity_graph(bad, ds, queries, 0.25)
        assert not report["is_proximity_graph_on_sample"]

    def test_validation_parameters(self, rng):
        ds = make_dataset(uniform_cube(10, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        with pytest.raises(ValueError):
            corrupt_graph(res.graph, rng, drop_fraction=0.0)

    def test_light_corruption_may_survive_but_is_consistent(self, rng):
        """Whatever the verdict after light corruption, the local and
        behavioral views must agree (the cross-check's raison d'etre)."""
        ds = make_dataset(uniform_cube(50, 2, rng))
        res = build_gnet(ds, epsilon=1.0)
        bad = corrupt_graph(res.graph, rng, drop_fraction=0.2, victims=5)
        queries = [rng.uniform(0, 20, size=2) for _ in range(6)]
        report = validate_proximity_graph(bad, ds, queries, 1.0)
        assert (report["local_violations"] == 0) == (
            report["greedy_failures"] == 0
        )
