"""Tests for the Vamana (practical DiskANN) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import VamanaIndex
from repro.core import build
from repro.metrics import Dataset, EuclideanMetric
from repro.workloads import gaussian_clusters


class TestConstruction:
    def test_degree_cap_respected(self, uniform2d, rng):
        index = VamanaIndex(uniform2d, rng, max_degree=10)
        assert index.graph().max_out_degree() <= 10

    def test_every_vertex_connected(self, uniform2d, rng):
        index = VamanaIndex(uniform2d, rng, max_degree=8)
        g = index.graph()
        assert g.min_out_degree() >= 1

    def test_robust_prune_keeps_nearest(self, uniform2d, rng):
        """The closest candidate always survives pruning."""
        index = VamanaIndex(uniform2d, rng, max_degree=6)
        for p in range(0, uniform2d.n, 13):
            row = uniform2d.distances_from_index_to_all(p)
            row[p] = np.inf
            nn = int(np.argmin(row))
            nbrs = set(map(int, index.graph().out_neighbors(p)))
            # nn is kept if it was ever a candidate; with two passes over
            # all points via beam search it practically always is.
            assert nn in nbrs

    def test_validation(self, uniform2d, rng):
        with pytest.raises(ValueError):
            VamanaIndex(uniform2d, rng, max_degree=1)


class TestSearch:
    def test_recall_on_clustered(self, rng):
        pts = gaussian_clusters(300, 2, rng, clusters=5)
        ds = Dataset(EuclideanMetric(), pts)
        index = VamanaIndex(ds, rng, max_degree=12, beam_width=48)
        hits = 0
        for _ in range(40):
            q = rng.uniform(0, 1, size=2)
            got = index.search(q, k=1)[0][0]
            hits += got == ds.nearest_neighbor(q)[0]
        assert hits >= 36  # >= 90%

    def test_search_k(self, uniform2d, rng):
        index = VamanaIndex(uniform2d, rng, max_degree=8)
        out = index.search(rng.uniform(0, 30, size=2), k=4)
        assert len(out) == 4
        dists = [d for _, d in out]
        assert dists == sorted(dists)


class TestBuilderIntegration:
    def test_registry(self, uniform2d, rng):
        built = build("vamana", uniform2d, 1.0, rng, max_degree=8)
        assert built.name == "vamana"
        assert not built.guaranteed
        assert built.meta["max_degree"] == 8
        assert built.backend is not None

    def test_smaller_than_guaranteed_graphs(self, uniform2d, rng):
        vamana = build("vamana", uniform2d, 1.0, rng, max_degree=8)
        gnet = build("gnet", uniform2d, 1.0, rng)
        assert vamana.graph.num_edges < gnet.graph.num_edges

    def test_deterministic_under_seed(self, uniform2d):
        a = build("vamana", uniform2d, 1.0, np.random.default_rng(3))
        b = build("vamana", uniform2d, 1.0, np.random.default_rng(3))
        assert a.graph == b.graph
