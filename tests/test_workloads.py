"""Tests for the synthetic workload and query generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import Dataset, EuclideanMetric, estimate_doubling_constant
from repro.workloads import (
    data_queries,
    exponential_line,
    far_queries,
    gaussian_clusters,
    geometric_clusters,
    grid_points,
    low_doubling_curve,
    make_dataset,
    near_data_queries,
    uniform_cube,
    uniform_queries,
)


class TestPointGenerators:
    def test_shapes(self, rng):
        assert uniform_cube(50, 3, rng).shape == (50, 3)
        assert gaussian_clusters(40, 2, rng).shape == (40, 2)
        assert geometric_clusters(30, 2, rng).shape == (30, 2)
        assert exponential_line(10, rng).shape == (10, 2)
        assert low_doubling_curve(25, 6, rng).shape == (25, 6)

    def test_deterministic_under_seed(self):
        a = uniform_cube(20, 2, np.random.default_rng(4))
        b = uniform_cube(20, 2, np.random.default_rng(4))
        assert np.array_equal(a, b)

    def test_grid_points(self):
        g = grid_points(3, 2, spacing=2.0)
        assert g.shape == (9, 2)
        assert g.max() == 4.0
        ds = Dataset(EuclideanMetric(), g)
        assert ds.min_interpoint_distance() == pytest.approx(2.0)

    def test_geometric_clusters_aspect_ratio_grows_with_levels(self, rng):
        ars = []
        for levels in [2, 4, 6]:
            pts = geometric_clusters(60, 2, np.random.default_rng(11), levels=levels)
            ds = Dataset(EuclideanMetric(), pts)
            ars.append(ds.aspect_ratio())
        assert ars[0] < ars[1] < ars[2]

    def test_exponential_line_extreme_aspect_ratio(self, rng):
        pts = exponential_line(12, rng)
        ds = Dataset(EuclideanMetric(), pts)
        assert ds.aspect_ratio() > 2.0**8

    def test_low_doubling_curve_has_small_doubling_constant(self, rng):
        curve = low_doubling_curve(150, 8, rng)
        cube = uniform_cube(150, 8, rng)
        est_curve = estimate_doubling_constant(
            Dataset(EuclideanMetric(), curve), np.random.default_rng(1), trials=24
        )
        est_cube = estimate_doubling_constant(
            Dataset(EuclideanMetric(), cube), np.random.default_rng(1), trials=24
        )
        assert est_curve < est_cube

    def test_geometric_levels_validation(self, rng):
        with pytest.raises(ValueError):
            geometric_clusters(10, 2, rng, levels=0)


class TestMakeDataset:
    def test_normalizes_to_min_distance_two(self, rng):
        ds = make_dataset(uniform_cube(30, 2, rng))
        assert ds.min_interpoint_distance() == pytest.approx(2.0)

    def test_no_normalize_option(self, rng):
        pts = uniform_cube(30, 2, rng)
        ds = make_dataset(pts, normalize=False)
        assert ds.min_interpoint_distance() < 2.0


class TestQueryGenerators:
    def test_uniform_queries_in_inflated_box(self, rng):
        pts = uniform_cube(40, 2, rng) * 10
        qs = uniform_queries(100, pts, rng, margin=0.1)
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        pad = (hi - lo) * 0.1
        assert (qs >= lo - pad - 1e-9).all() and (qs <= hi + pad + 1e-9).all()

    def test_near_data_queries_close(self, rng):
        pts = uniform_cube(40, 2, rng)
        qs = near_data_queries(50, pts, rng, noise=0.01)
        ds = Dataset(EuclideanMetric(), pts)
        diag = np.linalg.norm(pts.max(axis=0) - pts.min(axis=0))
        for q in qs:
            assert ds.nearest_neighbor(q)[1] < diag

    def test_far_queries_actually_far(self, rng):
        pts = uniform_cube(40, 2, rng)
        qs = far_queries(20, pts, rng, factor=4.0)
        diag = np.linalg.norm(pts.max(axis=0) - pts.min(axis=0))
        ds = Dataset(EuclideanMetric(), pts)
        for q in qs:
            assert ds.nearest_neighbor(q)[1] > diag

    def test_data_queries_are_data_points(self, rng):
        pts = uniform_cube(40, 2, rng)
        qs = data_queries(10, pts, rng)
        pt_set = {tuple(p) for p in pts}
        assert all(tuple(q) in pt_set for q in qs)

    def test_data_queries_capped_at_n(self, rng):
        pts = uniform_cube(5, 2, rng)
        assert len(data_queries(50, pts, rng)) == 5
